//! Reconstruction-error metrics, total over all of `f64`.
//!
//! The paper assesses compression quality with RMSE (Fig. 10) and sweeps
//! rate–distortion curves of compression ratio vs RMSE (Fig. 11). Error
//! bounds for the SZ-like codec are *pointwise relative*, which
//! [`max_pointwise_rel_error`] verifies.
//!
//! Decoded data can carry NaN or infinity — a corrupt stream, an outlier
//! path, or genuinely non-finite simulation output — and the metric layer
//! must never panic or silently poison a maximum when it does. Every
//! metric here classifies its inputs: non-finite pairs are skipped in
//! the accumulation and *counted*, and [`ErrorReport::compare`] surfaces
//! those counts alongside the metrics instead of hiding them. Points
//! whose reference magnitude is at or below the relative floor are
//! likewise skipped-and-counted, per SZ's pointwise-relative definition
//! (relative error is ill-defined at zero).

use std::fmt;

/// Typed errors from the statistics layer. Metric code returns these
/// instead of panicking so a bound check on hostile data degrades to a
/// reportable failure, not an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// The two slices have different lengths.
    LengthMismatch {
        /// Length of the reference slice.
        left: usize,
        /// Length of the comparison slice.
        right: usize,
    },
    /// A non-finite value was found where the caller required finite
    /// input (e.g. [`crate::BoundReport::try_check`]).
    NonFiniteInput {
        /// Index of the first offending element.
        index: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right} elements")
            }
            StatsError::NonFiniteInput { index } => {
                write!(f, "non-finite input at index {index}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// One-pass, NaN-aware reconstruction-error summary.
///
/// All accumulated metrics (`mse`, `rmse`, `max_abs`, `max_rel`) are
/// computed over the *finite* pairs only and are therefore always
/// finite themselves; the skipped points are reported in
/// [`nonfinite_count`](Self::nonfinite_count) and
/// [`below_floor_count`](Self::below_floor_count) so a caller can
/// decide whether the coverage was good enough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Total pairs examined.
    pub count: usize,
    /// Pairs where both values are finite (the metric denominator).
    pub finite_count: usize,
    /// Pairs where either value is NaN or infinite.
    pub nonfinite_count: usize,
    /// Finite pairs excluded from `max_rel` because `|a| <= floor`
    /// (zero-denominator points in SZ's pointwise-relative sense).
    pub below_floor_count: usize,
    /// Mean squared error over finite pairs (0 when none).
    pub mse: f64,
    /// Root mean squared error over finite pairs.
    pub rmse: f64,
    /// Maximum absolute pointwise error over finite pairs.
    pub max_abs: f64,
    /// Maximum pointwise relative error over finite pairs above the
    /// floor.
    pub max_rel: f64,
}

impl ErrorReport {
    /// Compares reconstruction `b` against reference `a`, with `floor`
    /// as the magnitude threshold for the relative metric.
    ///
    /// Never panics: a length mismatch is a typed error, and NaN/inf
    /// values are classified and counted rather than propagated.
    pub fn compare(a: &[f64], b: &[f64], floor: f64) -> Result<Self, StatsError> {
        if a.len() != b.len() {
            return Err(StatsError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        let mut finite_count = 0usize;
        let mut nonfinite_count = 0usize;
        let mut below_floor_count = 0usize;
        let mut sum_sq = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut max_rel = 0.0f64;
        for (&x, &y) in a.iter().zip(b) {
            if !x.is_finite() || !y.is_finite() {
                nonfinite_count += 1;
                continue;
            }
            finite_count += 1;
            let d = (x - y).abs();
            sum_sq += d * d;
            max_abs = max_abs.max(d);
            let xa = x.abs();
            if xa > floor {
                max_rel = max_rel.max(d / xa);
            } else {
                below_floor_count += 1;
            }
        }
        let n = finite_count;
        let mse = if n > 0 { sum_sq / n as f64 } else { 0.0 };
        Ok(ErrorReport {
            count: a.len(),
            finite_count,
            nonfinite_count,
            below_floor_count,
            mse,
            rmse: mse.sqrt(),
            max_abs,
            max_rel,
        })
    }

    /// True when every examined pair was finite.
    pub fn all_finite(&self) -> bool {
        self.nonfinite_count == 0
    }
}

/// Mean squared error between `a` and `b`, over finite pairs (NaN/inf
/// pairs are skipped; use [`ErrorReport::compare`] to see how many).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse: length mismatch");
    let mut n = 0usize;
    let mut s = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            let d = x - y;
            s += d * d;
            n += 1;
        }
    }
    if n > 0 {
        s / n as f64
    } else {
        0.0
    }
}

/// Root mean squared error between `a` and `b`.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    mse(a, b).sqrt()
}

/// RMSE normalized by the value range of `a` (the reference data).
/// Returns plain RMSE when the range is zero or not finite.
pub fn nrmse(a: &[f64], b: &[f64]) -> f64 {
    let r = rmse(a, b);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in a {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let range = hi - lo;
    if range.is_finite() && range > 0.0 {
        r / range
    } else {
        r
    }
}

/// Peak signal-to-noise ratio in dB, with the peak taken as the value
/// range of the finite reference values in `a`. Returns `f64::INFINITY`
/// for identical data.
pub fn psnr(a: &[f64], b: &[f64]) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        return f64::INFINITY;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in a {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let peak = hi - lo;
    20.0 * peak.log10() - 10.0 * m.log10()
}

/// Maximum absolute pointwise error over finite pairs.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error: length mismatch");
    a.iter()
        .zip(b)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Maximum pointwise *relative* error `|a_i - b_i| / |a_i|`, skipping
/// reference points whose magnitude is at or below `floor` (where
/// relative error is ill-defined) and pairs with NaN/inf on either
/// side. This is the error semantics of SZ's point-wise relative bound
/// mode used throughout the paper's evaluation; use
/// [`ErrorReport::compare`] when the skip counts matter.
pub fn max_pointwise_rel_error(a: &[f64], b: &[f64], floor: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "max_pointwise_rel_error: length mismatch");
    let mut worst: f64 = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if !x.is_finite() || !y.is_finite() {
            continue;
        }
        let xa = x.abs();
        if xa > floor {
            worst = worst.max((x - y).abs() / xa);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let d = [1.0, -2.0, 3.0];
        assert_eq!(mse(&d, &d), 0.0);
        assert_eq!(rmse(&d, &d), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((mse(&a, &b) - 12.5).abs() < 1e-15);
        assert!((rmse(&a, &b) - 12.5f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let a = [0.0, 10.0];
        let b = [1.0, 10.0];
        // rmse = sqrt(0.5), range = 10
        assert!((nrmse(&a, &b) - (0.5f64.sqrt() / 10.0)).abs() < 1e-15);
    }

    #[test]
    fn psnr_of_identical_is_infinite() {
        let d = [1.0, 2.0];
        assert_eq!(psnr(&d, &d), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let small: Vec<f64> = a.iter().map(|v| v + 0.01).collect();
        let big: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        assert!(psnr(&a, &small) > psnr(&a, &big));
    }

    #[test]
    fn max_abs_error_finds_worst_point() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.1];
        assert!((max_abs_error(&a, &b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rel_error_skips_tiny_reference_values() {
        let a = [1e-300, 10.0];
        let b = [1.0, 10.1];
        let e = max_pointwise_rel_error(&a, &b, 1e-100);
        assert!((e - 0.01).abs() < 1e-12, "e = {e}");
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let a = [5.0, -5.0];
        assert_eq!(max_pointwise_rel_error(&a, &a, 0.0), 0.0);
    }

    #[test]
    fn rel_error_with_zero_reference_is_finite() {
        // The pre-fix behavior: a zero reference with floor 0 produced
        // 0/0 = NaN (identical) or inf (differing) and poisoned `worst`.
        let a = [0.0, 10.0];
        let b = [0.0, 10.1];
        let e = max_pointwise_rel_error(&a, &b, 0.0);
        assert!(e.is_finite());
        assert!((e - 0.01).abs() < 1e-12, "e = {e}");
        let b2 = [0.5, 10.1];
        assert!(max_pointwise_rel_error(&a, &b2, 0.0).is_finite());
    }

    #[test]
    fn metrics_skip_nan_and_inf_pairs() {
        let a = [1.0, f64::NAN, 3.0, f64::INFINITY];
        let b = [1.5, 2.0, 3.0, 4.0];
        assert!((mse(&a, &b) - 0.125).abs() < 1e-15);
        assert!(mse(&a, &b).is_finite());
        assert!((max_abs_error(&a, &b) - 0.5).abs() < 1e-15);
        assert!(max_pointwise_rel_error(&a, &b, 0.0).is_finite());
        assert!(nrmse(&a, &b).is_finite());
        assert!(psnr(&a, &b).is_finite());
    }

    #[test]
    fn all_nan_inputs_yield_zero_not_nan() {
        let a = [f64::NAN, f64::NAN];
        let b = [1.0, 2.0];
        assert_eq!(mse(&a, &b), 0.0);
        assert_eq!(max_abs_error(&a, &b), 0.0);
    }

    #[test]
    fn report_counts_and_metrics_agree_with_free_fns() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.1, 2.0, 2.9, 4.4];
        let r = ErrorReport::compare(&a, &b, 0.0).expect("compare");
        assert_eq!(r.count, 4);
        assert_eq!(r.finite_count, 4);
        assert_eq!(r.nonfinite_count, 0);
        assert!(r.all_finite());
        assert!((r.mse - mse(&a, &b)).abs() < 1e-15);
        assert!((r.rmse - rmse(&a, &b)).abs() < 1e-15);
        assert!((r.max_abs - max_abs_error(&a, &b)).abs() < 1e-15);
        assert!((r.max_rel - max_pointwise_rel_error(&a, &b, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn report_surfaces_nonfinite_and_floor_counts() {
        let a = [1.0, f64::NAN, 0.0, f64::NEG_INFINITY, 5.0];
        let b = [1.0, 1.0, 0.5, 1.0, f64::NAN];
        let r = ErrorReport::compare(&a, &b, 1e-12).expect("compare");
        assert_eq!(r.count, 5);
        assert_eq!(r.nonfinite_count, 3); // indices 1, 3, 4
        assert_eq!(r.finite_count, 2); // indices 0, 2
        assert_eq!(r.below_floor_count, 1); // index 2: |a| = 0
        assert!(!r.all_finite());
        assert!(r.mse.is_finite());
        assert!(r.max_rel.is_finite());
    }

    #[test]
    fn report_length_mismatch_is_a_typed_error() {
        let e = ErrorReport::compare(&[1.0], &[1.0, 2.0], 0.0);
        assert_eq!(e, Err(StatsError::LengthMismatch { left: 1, right: 2 }));
        let msg = format!("{}", e.expect_err("mismatch"));
        assert!(msg.contains("length mismatch"));
    }

    #[test]
    fn empty_report_is_well_defined() {
        let r = ErrorReport::compare(&[], &[], 0.0).expect("compare");
        assert_eq!(r.count, 0);
        assert_eq!(r.mse, 0.0);
        assert_eq!(r.rmse, 0.0);
    }
}
