//! Basic sample moments and a one-pass summary.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64
}

/// Minimum value; `f64::INFINITY` for an empty slice.
pub fn min(data: &[f64]) -> f64 {
    data.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value; `f64::NEG_INFINITY` for an empty slice.
pub fn max(data: &[f64]) -> f64 {
    data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// One-pass summary of a sample: count, min, max, mean, variance.
///
/// Uses Welford's algorithm, so it is numerically stable for long streams
/// (e.g. full 192³ Heat3d snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Builds a summary over a whole slice.
    pub fn of(data: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in data {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Merges another summary into this one (parallel reduction step).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Minimum observation (`INFINITY` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }
    /// Maximum observation (`NEG_INFINITY` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }
    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
    /// Value range `max - min` (0 when empty).
    pub fn range(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&d) - 5.0).abs() < 1e-15);
        assert!((variance(&d) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn summary_matches_direct_computation() {
        let d: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let s = Summary::of(&d);
        assert_eq!(s.count(), 1000);
        assert!((s.mean() - mean(&d)).abs() < 1e-12);
        assert!((s.variance() - variance(&d)).abs() < 1e-10);
        assert_eq!(s.min(), min(&d));
        assert_eq!(s.max(), max(&d));
    }

    #[test]
    fn summary_merge_equals_whole() {
        let d: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let mut a = Summary::of(&d[..200]);
        let b = Summary::of(&d[200..]);
        a.merge(&b);
        let whole = Summary::of(&d);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let d = [1.0, 2.0, 3.0];
        let mut s = Summary::of(&d);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_slice_conventions() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }
}
