//! Data-characteristics statistics for scientific floating-point data.
//!
//! This crate implements the metrics the paper uses to argue that a full
//! model and its reduced model are statistically similar (Fig. 1 and
//! Table II), and the error metrics used to assess compression quality
//! (Fig. 10, Fig. 11):
//!
//! * **Byte entropy** — Shannon entropy of the byte stream of the IEEE-754
//!   little-endian encoding, in `[0, 8]` bits/byte.
//! * **Byte mean** — arithmetic mean of the byte stream; near 127.5 for
//!   random data.
//! * **Serial correlation** — lag-1 Pearson correlation of consecutive
//!   bytes, in `[-1, 1]`.
//! * **CDF** — empirical cumulative distribution of the values, compared
//!   between models via the Kolmogorov–Smirnov statistic.
//! * **RMSE / NRMSE / PSNR** — reconstruction-quality metrics.

pub mod bytes;
pub mod cdf;
pub mod error;
pub mod moments;
pub mod verify;

pub use bytes::{byte_entropy, byte_mean, bytes_of, serial_correlation};
pub use cdf::{ks_distance, EmpiricalCdf};
pub use error::{
    max_abs_error, max_pointwise_rel_error, mse, nrmse, psnr, rmse, ErrorReport, StatsError,
};
pub use moments::{max, mean, min, variance, Summary};
pub use verify::{Bound, BoundReport};

/// The triple of scalar byte-level statistics the paper reports alongside
/// each CDF in Fig. 1 and in Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataCharacteristics {
    /// Shannon entropy of the byte stream, in bits per byte (`[0, 8]`).
    pub byte_entropy: f64,
    /// Arithmetic mean of the byte stream (`[0, 255]`).
    pub byte_mean: f64,
    /// Lag-1 serial correlation of the byte stream (`[-1, 1]`).
    pub serial_correlation: f64,
}

impl DataCharacteristics {
    /// Computes all three byte-level characteristics of `data` in one pass
    /// over its little-endian IEEE-754 byte stream.
    ///
    /// ```
    /// let d: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
    /// let c = lrm_stats::DataCharacteristics::of(&d);
    /// assert!(c.byte_entropy > 0.0 && c.byte_entropy < 8.0);
    /// ```
    pub fn of(data: &[f64]) -> Self {
        let b = bytes_of(data);
        Self {
            byte_entropy: byte_entropy(&b),
            byte_mean: byte_mean(&b),
            serial_correlation: serial_correlation(&b),
        }
    }

    /// Returns `true` when `self` and `other` agree within the loose
    /// tolerances the paper uses to call two models "similar": entropy
    /// within `tol_entropy` bits, byte mean within `tol_mean`, and serial
    /// correlation within `tol_corr`.
    pub fn similar_to(&self, other: &Self, tol_entropy: f64, tol_mean: f64, tol_corr: f64) -> bool {
        (self.byte_entropy - other.byte_entropy).abs() <= tol_entropy
            && (self.byte_mean - other.byte_mean).abs() <= tol_mean
            && (self.serial_correlation - other.serial_correlation).abs() <= tol_corr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characteristics_of_constant_data() {
        let d = vec![1.0f64; 256];
        let c = DataCharacteristics::of(&d);
        // A constant double has at most 8 distinct byte values -> entropy <= 3.
        assert!(c.byte_entropy <= 3.0, "entropy {}", c.byte_entropy);
    }

    #[test]
    fn characteristics_of_smooth_vs_noise() {
        let mut rng = lrm_rng::Rng64::new(7);
        let noise: Vec<f64> = rng.vec_f64(0.0, 1.0, 4096);
        // Integer-valued doubles have many zero mantissa bytes, so their
        // byte stream is far from uniform; uniform noise fills all bytes.
        let smooth: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let cn = DataCharacteristics::of(&noise);
        let cs = DataCharacteristics::of(&smooth);
        assert!(cn.byte_entropy > cs.byte_entropy);
    }

    #[test]
    fn similar_to_is_reflexive() {
        let d: Vec<f64> = (0..512).map(|i| i as f64).collect();
        let c = DataCharacteristics::of(&d);
        assert!(c.similar_to(&c, 1e-12, 1e-12, 1e-12));
    }

    #[test]
    fn similar_to_respects_tolerance() {
        let a = DataCharacteristics {
            byte_entropy: 7.0,
            byte_mean: 137.0,
            serial_correlation: -0.04,
        };
        let b = DataCharacteristics {
            byte_entropy: 7.03,
            byte_mean: 134.7,
            serial_correlation: -0.02,
        };
        // Table II tolerances: the paper calls these "nearly the same".
        assert!(a.similar_to(&b, 0.1, 5.0, 0.05));
        assert!(!a.similar_to(&b, 0.01, 5.0, 0.05));
    }
}
