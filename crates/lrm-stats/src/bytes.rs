//! Byte-stream statistics over the IEEE-754 encoding of `f64` data.
//!
//! The paper characterizes datasets by treating their on-disk byte stream
//! as a sequence of `u8` symbols (as the classic `ent` tool does) and
//! reporting Shannon entropy, arithmetic mean, and lag-1 serial
//! correlation. These three quantities are what Fig. 1 and Table II show.

/// Converts a slice of doubles into its little-endian byte stream, i.e. the
/// exact bytes that would be written to disk in native HPC output.
pub fn bytes_of(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Shannon entropy of a byte stream, in bits per byte.
///
/// Ranges in `[0, 8]`; the closer to 8, the closer the stream is to
/// uniformly random. Returns 0 for an empty stream.
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    let mut h = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Arithmetic mean of a byte stream.
///
/// "This is simply the result of summing all the bytes of a dataset and
/// dividing by the file length" — close to 127.5 for random data; a
/// consistent deviation means the values are consistently high or low.
pub fn byte_mean(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let sum: u64 = bytes.iter().map(|&b| b as u64).sum();
    sum as f64 / bytes.len() as f64
}

/// Lag-1 serial correlation coefficient of a byte stream.
///
/// Measures the extent to which each byte depends on the previous byte.
/// Ranges in `[-1, 1]`; near 0 for uncorrelated data. Returns 0 when the
/// stream has fewer than two bytes or zero variance.
pub fn serial_correlation(bytes: &[u8]) -> f64 {
    let n = bytes.len();
    if n < 2 {
        return 0.0;
    }
    // Pearson correlation between (b[0..n-1]) and (b[1..n]).
    let xs = &bytes[..n - 1];
    let ys = &bytes[1..];
    let m = xs.len() as f64;
    let mean_x: f64 = xs.iter().map(|&b| b as f64).sum::<f64>() / m;
    let mean_y: f64 = ys.iter().map(|&b| b as f64).sum::<f64>() / m;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..xs.len() {
        let dx = xs[i] as f64 - mean_x;
        let dy = ys[i] as f64 - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    let denom = (var_x * var_y).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_of_roundtrips_length() {
        let d = [1.0f64, 2.0, -3.5];
        assert_eq!(bytes_of(&d).len(), 24);
    }

    #[test]
    fn bytes_of_is_little_endian() {
        let b = bytes_of(&[1.0f64]);
        assert_eq!(b, 1.0f64.to_le_bytes());
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(byte_entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_of_single_symbol_is_zero() {
        assert_eq!(byte_entropy(&[42u8; 1000]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_bytes_is_eight() {
        let all: Vec<u8> = (0..=255u8).collect();
        let h = byte_entropy(&all);
        assert!((h - 8.0).abs() < 1e-12, "h = {h}");
    }

    #[test]
    fn entropy_of_two_symbols_is_one() {
        let b: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((byte_entropy(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn byte_mean_of_uniform_is_center() {
        let all: Vec<u8> = (0..=255u8).collect();
        assert!((byte_mean(&all) - 127.5).abs() < 1e-12);
    }

    #[test]
    fn byte_mean_of_empty_is_zero() {
        assert_eq!(byte_mean(&[]), 0.0);
    }

    #[test]
    fn serial_correlation_of_ramp_is_high() {
        // A slowly-incrementing ramp has strong positive lag-1 correlation.
        let b: Vec<u8> = (0..2000).map(|i| (i / 16) as u8).collect();
        assert!(serial_correlation(&b) > 0.9);
    }

    #[test]
    fn serial_correlation_of_alternating_is_negative() {
        let b: Vec<u8> = (0..1000)
            .map(|i| if i % 2 == 0 { 0 } else { 255 })
            .collect();
        assert!(serial_correlation(&b) < -0.99);
    }

    #[test]
    fn serial_correlation_of_constant_is_zero() {
        assert_eq!(serial_correlation(&[9u8; 100]), 0.0);
    }

    #[test]
    fn serial_correlation_bounds() {
        let mut rng = lrm_rng::Rng64::new(1);
        let b: Vec<u8> = rng.vec_u8(10_000);
        let c = serial_correlation(&b);
        assert!(c.abs() < 0.05, "random bytes should be ~uncorrelated: {c}");
    }
}
