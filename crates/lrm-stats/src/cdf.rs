//! Empirical cumulative distribution functions.
//!
//! Fig. 1 of the paper overlays the CDFs of full-model and reduced-model
//! data to show they are "nearly identical". [`EmpiricalCdf`] supports
//! evaluation at arbitrary points, quantiles, and a Kolmogorov–Smirnov
//! distance for quantifying that similarity.

/// An empirical CDF built from a sample. Non-finite values are dropped.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample, sorting a private copy.
    pub fn new(sample: &[f64]) -> Self {
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self { sorted }
    }

    /// Number of (finite) points the CDF was built from.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no points.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of sample values `<= x`. Returns 0 for an empty CDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value `v` with `F(v) >= p`.
    ///
    /// `p` is clamped to `[0, 1]`. Returns `None` for an empty CDF.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil().clamp(0.0, n as f64) as usize)
            .saturating_sub(1)
            .min(n - 1);
        Some(self.sorted[idx])
    }

    /// Samples `n` evenly-spaced (value, F(value)) points for plotting, the
    /// series Fig. 1 draws.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let x = if n == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (n - 1) as f64
                };
                (x, self.eval(x))
            })
            .collect()
    }

    /// Immutable view of the sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Two-sample Kolmogorov–Smirnov statistic: `sup_x |F_a(x) - F_b(x)|`.
///
/// 0 means identical empirical distributions; 1 means disjoint supports.
/// This is the quantitative form of Fig. 1's "nearly identical CDFs".
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let fa = EmpiricalCdf::new(a);
    let fb = EmpiricalCdf::new(b);
    if fa.is_empty() || fb.is_empty() {
        return if fa.is_empty() && fb.is_empty() {
            0.0
        } else {
            1.0
        };
    }
    // The supremum is attained at a sample point of either distribution.
    let mut d: f64 = 0.0;
    for &x in fa.sorted_values().iter().chain(fb.sorted_values()) {
        d = d.max((fa.eval(x) - fb.eval(x)).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_through_sample() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let cdf = EmpiricalCdf::new(&[f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn quantile_median() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.quantile(0.5), Some(3.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(EmpiricalCdf::new(&[]).quantile(0.5), None);
    }

    #[test]
    fn curve_is_monotone() {
        let d: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let c = EmpiricalCdf::new(&d).curve(33);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(c.len(), 33);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let d: Vec<f64> = (0..64).map(|i| i as f64).collect();
        assert_eq!(ks_distance(&d, &d), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [0.0, 1.0, 2.0];
        let b = [10.0, 11.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
    }

    #[test]
    fn ks_is_symmetric() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let b: Vec<f64> = (0..80).map(|i| (i as f64).ln_1p()).collect();
        assert!((ks_distance(&a, &b) - ks_distance(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn ks_detects_shift() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 / 100.0 + 0.5).collect();
        let d = ks_distance(&a, &b);
        assert!(d > 0.4 && d < 0.6, "d = {d}");
    }
}
