//! Asynchronous data staging: a real producer/consumer pipeline.
//!
//! The last row of Table IV offloads compression and I/O to a staging
//! node so the simulation only blocks for the interconnect transfer.
//! [`StagingPipeline`] reproduces that architecture in-process: the
//! application thread `submit`s raw snapshots into a bounded std mpsc
//! channel (the "interconnect"), a staging thread drains it, applies a
//! caller-supplied processing closure (compression) and "writes" the
//! result to an in-memory store guarded by a mutex. The
//! application-visible cost of a submit is just the channel hand-off,
//! exactly like the paper's staging row.

// Mutex poisoning here means a staging-thread panic already lost the
// data; propagating that panic is the correct response and these locks
// never see untrusted input, so the decode-path clippy promotion does
// not apply.
#![allow(clippy::expect_used)]

use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A snapshot handed to the staging node.
pub struct StagedItem {
    /// Logical name (e.g. the field name).
    pub name: String,
    /// Raw payload.
    pub data: Vec<f64>,
}

/// Result of staging one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedResult {
    /// Logical name.
    pub name: String,
    /// Raw input bytes.
    pub raw_bytes: usize,
    /// Bytes after the processing stage.
    pub stored_bytes: usize,
}

/// Handle to a running staging pipeline.
pub struct StagingPipeline {
    tx: Option<SyncSender<StagedItem>>,
    worker: Option<JoinHandle<()>>,
    store: Arc<Mutex<Vec<StagedResult>>>,
    submit_time: Arc<Mutex<Duration>>,
}

impl StagingPipeline {
    /// Spawns the staging worker. `capacity` bounds the in-flight queue
    /// (the interconnect buffer); `process` maps raw doubles to stored
    /// bytes (the compression the staging node runs).
    pub fn start<F>(capacity: usize, process: F) -> Self
    where
        F: Fn(&str, &[f64]) -> Vec<u8> + Send + 'static,
    {
        let (tx, rx) = sync_channel::<StagedItem>(capacity.max(1));
        let store: Arc<Mutex<Vec<StagedResult>>> = Arc::new(Mutex::new(Vec::new()));
        let store2 = Arc::clone(&store);
        // lint:allow(no-unscoped-spawn): long-lived worker with an owned JoinHandle; finish()/Drop join it
        let worker = std::thread::spawn(move || {
            for item in rx {
                let out = process(&item.name, &item.data);
                store2
                    .lock()
                    .expect("staging store poisoned")
                    .push(StagedResult {
                        name: item.name,
                        raw_bytes: item.data.len() * 8,
                        stored_bytes: out.len(),
                    });
            }
        });
        Self {
            tx: Some(tx),
            worker: Some(worker),
            store,
            submit_time: Arc::new(Mutex::new(Duration::ZERO)),
        }
    }

    /// Submits a snapshot; blocks only while the queue is full (back
    /// pressure), which is the application-visible staging cost.
    pub fn submit(&self, name: impl Into<String>, data: Vec<f64>) {
        let t0 = Instant::now();
        self.tx
            .as_ref()
            .expect("pipeline already shut down")
            .send(StagedItem {
                name: name.into(),
                data,
            })
            .expect("staging worker died");
        *self.submit_time.lock().expect("staging timer poisoned") += t0.elapsed();
    }

    /// Cumulative time the application spent blocked in `submit`.
    pub fn application_blocked_time(&self) -> Duration {
        *self.submit_time.lock().expect("staging timer poisoned")
    }

    /// Shuts down: waits for the staging node to drain the queue and
    /// returns everything it stored, in completion order.
    pub fn finish(mut self) -> Vec<StagedResult> {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            w.join().expect("staging worker panicked");
        }
        let results = self.store.lock().expect("staging store poisoned").clone();
        results
    }
}

impl Drop for StagingPipeline {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_processes_everything_submitted() {
        let p = StagingPipeline::start(4, |_, data| vec![0u8; data.len()]);
        for i in 0..10 {
            p.submit(format!("snap{i}"), vec![i as f64; 100]);
        }
        let results = p.finish();
        assert_eq!(results.len(), 10);
        for r in &results {
            assert_eq!(r.raw_bytes, 800);
            assert_eq!(r.stored_bytes, 100);
        }
    }

    #[test]
    fn results_preserve_names() {
        let p = StagingPipeline::start(2, |name, _| name.as_bytes().to_vec());
        p.submit("alpha", vec![1.0]);
        p.submit("beta", vec![2.0]);
        let results = p.finish();
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"alpha") && names.contains(&"beta"));
    }

    #[test]
    fn submit_is_cheap_when_processing_is_slow() {
        // The staging premise: a slow compressor must not block the app
        // (until back pressure kicks in).
        let p = StagingPipeline::start(16, |_, data| {
            std::thread::sleep(Duration::from_millis(20));
            vec![0u8; data.len() / 10]
        });
        let t0 = Instant::now();
        for i in 0..5 {
            p.submit(format!("s{i}"), vec![0.0; 1000]);
        }
        let submit_elapsed = t0.elapsed();
        let results = p.finish();
        assert_eq!(results.len(), 5);
        // 5 submits must cost far less than 5 x 20 ms of processing.
        assert!(
            submit_elapsed < Duration::from_millis(50),
            "submits took {submit_elapsed:?}"
        );
    }

    #[test]
    fn bounded_queue_applies_back_pressure() {
        let p = StagingPipeline::start(1, |_, _| {
            std::thread::sleep(Duration::from_millis(10));
            Vec::new()
        });
        let t0 = Instant::now();
        for i in 0..4 {
            p.submit(format!("s{i}"), vec![0.0; 10]);
        }
        // With capacity 1 and 10 ms processing, some submits must block.
        assert!(t0.elapsed() >= Duration::from_millis(15));
        p.finish();
    }

    #[test]
    fn finish_drains_the_queue() {
        let p = StagingPipeline::start(64, |_, d| vec![1u8; d.len()]);
        for i in 0..50 {
            p.submit(format!("s{i}"), vec![0.0; 8]);
        }
        assert_eq!(p.finish().len(), 50);
    }

    #[test]
    fn blocked_time_is_tracked() {
        let p = StagingPipeline::start(8, |_, _| Vec::new());
        p.submit("x", vec![0.0; 10]);
        let t = p.application_blocked_time();
        assert!(t < Duration::from_millis(50));
        p.finish();
    }
}
