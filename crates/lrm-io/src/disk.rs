//! Disk-backed artifact store with real I/O timing.
//!
//! The storage *model* in [`crate::storage`] reasons about a Titan-scale
//! file system; this module performs and times actual local writes, so
//! Table IV(b)'s measured column can be cross-checked against real disk
//! behavior and examples can persist their artifacts.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A directory of named artifacts.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    sync: bool,
}

/// Result of a timed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Bytes written.
    pub bytes: usize,
    /// Wall time of the write (including fsync when enabled).
    pub elapsed: Duration,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            root: dir.as_ref().to_path_buf(),
            sync: false,
        })
    }

    /// Enables fsync after each write (closer to what checkpointing I/O
    /// actually pays).
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Artifact names may contain '/'; flatten them for the filesystem.
        self.root.join(name.replace('/', "_"))
    }

    /// Writes `bytes` under `name`, returning size and wall time.
    pub fn write(&self, name: &str, bytes: &[u8]) -> std::io::Result<WriteReceipt> {
        let t0 = Instant::now();
        let mut f = fs::File::create(self.path_of(name))?;
        f.write_all(bytes)?;
        if self.sync {
            f.sync_all()?;
        }
        Ok(WriteReceipt {
            bytes: bytes.len(),
            elapsed: t0.elapsed(),
        })
    }

    /// Reads the artifact stored under `name`.
    pub fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        fs::File::open(self.path_of(name))?.read_to_end(&mut out)?;
        Ok(out)
    }

    /// Lists stored artifact names (flattened form), sorted.
    pub fn list(&self) -> std::io::Result<Vec<String>> {
        let mut names: Vec<String> = fs::read_dir(&self.root)?
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        Ok(names)
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> std::io::Result<u64> {
        let mut total = 0;
        for e in fs::read_dir(&self.root)? {
            let e = e?;
            if e.file_type()?.is_file() {
                total += e.metadata()?.len();
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> DiskStore {
        let dir = std::env::temp_dir().join(format!("lrm-disk-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskStore::open(&dir).expect("open store")
    }

    #[test]
    fn write_read_roundtrip() {
        let store = tmp_store("rt");
        let data = vec![7u8; 4096];
        let receipt = store.write("snap/0", &data).expect("write");
        assert_eq!(receipt.bytes, 4096);
        assert_eq!(store.read("snap/0").expect("read"), data);
    }

    #[test]
    fn list_and_total() {
        let store = tmp_store("list");
        store.write("a", &[1, 2, 3]).expect("write");
        store.write("b", &[4; 10]).expect("write");
        assert_eq!(store.list().expect("list"), vec!["a", "b"]);
        assert_eq!(store.total_bytes().expect("total"), 13);
    }

    #[test]
    fn names_with_slashes_are_flattened() {
        let store = tmp_store("flat");
        store.write("heat3d/full/t=1", &[9]).expect("write");
        assert_eq!(store.list().expect("list"), vec!["heat3d_full_t=1"]);
        assert_eq!(store.read("heat3d/full/t=1").expect("read"), vec![9]);
    }

    #[test]
    fn missing_artifact_errors() {
        let store = tmp_store("missing");
        assert!(store.read("nope").is_err());
    }

    #[test]
    fn sync_mode_still_roundtrips() {
        let store = tmp_store("sync").with_sync(true);
        let r = store.write("x", &[0u8; 128]).expect("write");
        assert!(r.elapsed > Duration::ZERO);
        assert_eq!(store.read("x").expect("read").len(), 128);
    }
}
