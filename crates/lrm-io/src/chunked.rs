//! Multi-chunk artifact container for the chunk-parallel pipeline.
//!
//! The chunk engine decomposes a field into z-slabs and compresses each
//! slab independently; the result is one [`ChunkedArtifact`]: a
//! self-describing header (format version, global dims, chunk count,
//! per-chunk directory) followed by the per-chunk payloads, each of which
//! is a complete single-chunk [`Artifact`](crate::Artifact) stream.
//!
//! # Wire layout (version 1)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `"LRMC"` |
//! | 4      | 2    | format version (`1`) |
//! | 6      | 12   | global dims, 3 × `u32` LE |
//! | 18     | 4    | chunk count `C`, `u32` LE |
//! | 22     | 25·C | chunk directory (below) |
//! | …      | —    | concatenated chunk payloads |
//!
//! Each directory entry is 25 bytes: `z_offset: u32`, `dims: 3 × u32`,
//! `model_tag: u8`, `payload_len: u64` (all LE). Payload `i` starts where
//! payload `i-1` ends; the directory carries lengths, not offsets, so the
//! container can be streamed out without back-patching.
//!
//! # Versioning
//!
//! * A stream starting with `"LRM1"` is a **version-0** single-chunk
//!   artifact — the format that predates chunking.
//!   [`ChunkedArtifact::from_bytes`] wraps it as a one-chunk container
//!   with unknown dims (`[0, 0, 0]`), so every pre-chunking artifact
//!   still decodes.
//! * Version numbers only grow; decoders reject versions they don't
//!   know rather than guessing at the layout.

use lrm_compress::{DecodeError, DecodeResult};

/// Magic bytes identifying a chunked artifact stream.
const MAGIC: &[u8; 4] = b"LRMC";

/// Magic of the version-0 (single-chunk) artifact format.
const MAGIC_V0: &[u8; 4] = b"LRM1";

/// Current wire-format version.
pub const FORMAT_VERSION: u16 = 1;

/// Bytes per chunk-directory entry.
const ENTRY_LEN: usize = 25;
/// Hard ceiling on the directory's declared chunk count. 2^20 chunks
/// is a 25 MiB directory — orders of magnitude past any real grid
/// partition — so a corrupt count field fails typed instead of sizing
/// buffers from hostile bytes.
pub const MAX_CHUNK_COUNT: usize = 1 << 20;

/// Bytes before the chunk directory starts.
const HEADER_LEN: usize = 22;

/// Directory entry describing one chunk of a [`ChunkedArtifact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// First global z-plane covered by this chunk.
    pub z_offset: u32,
    /// Chunk dims `[nx, ny, nz]`.
    pub dims: [u32; 3],
    /// Reduced-model tag the chunk was preconditioned with (the same tag
    /// stored inside the chunk's own metadata; surfaced here so tooling
    /// can inspect a container without parsing payloads).
    pub model_tag: u8,
}

/// A multi-chunk compressed snapshot: header + per-chunk payloads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkedArtifact {
    /// Global field dims `[nx, ny, nz]` (all zero when wrapped from a
    /// version-0 stream, which carries its own shape in chunk metadata).
    pub global_dims: [u32; 3],
    chunks: Vec<(ChunkEntry, Vec<u8>)>,
}

impl ChunkedArtifact {
    /// An empty container for the given global dims.
    pub fn new(global_dims: [u32; 3]) -> Self {
        Self {
            global_dims,
            chunks: Vec::new(),
        }
    }

    /// Appends a chunk. Chunks must be pushed in ascending `z_offset`
    /// order — the decoder scatters them back by directory order.
    pub fn push(&mut self, entry: ChunkEntry, payload: Vec<u8>) {
        self.chunks.push((entry, payload));
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when no chunks are present.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Iterates `(entry, payload)` pairs in directory order.
    pub fn chunks(&self) -> impl Iterator<Item = (&ChunkEntry, &[u8])> {
        self.chunks.iter().map(|(e, p)| (e, p.as_slice()))
    }

    /// Total payload bytes across chunks (excludes header overhead, like
    /// [`Artifact::payload_bytes`](crate::Artifact::payload_bytes)).
    pub fn payload_bytes(&self) -> usize {
        self.chunks.iter().map(|(_, p)| p.len()).sum()
    }

    /// Serialized size: header + directory + payloads.
    pub fn nbytes(&self) -> usize {
        HEADER_LEN + self.chunks.len() * ENTRY_LEN + self.payload_bytes()
    }

    /// Serializes into the version-1 wire layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.nbytes());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for d in self.global_dims {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for (e, p) in &self.chunks {
            out.extend_from_slice(&e.z_offset.to_le_bytes());
            for d in e.dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
            out.push(e.model_tag);
            out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        }
        for (_, p) in &self.chunks {
            out.extend_from_slice(p);
        }
        out
    }

    /// Parses a chunked stream, or wraps a version-0 single-chunk stream
    /// as a one-chunk container. Returns a [`DecodeError`] on any
    /// structural error (bad magic, unknown version, truncation); never
    /// panics.
    pub fn from_bytes(b: &[u8]) -> DecodeResult<Self> {
        if b.get(..4) == Some(MAGIC_V0.as_slice()) {
            // Version-0 backward compatibility: the whole stream is one
            // chunk; its shape lives in its own metadata. Validate the
            // wrapped stream here so a truncated v0 artifact is rejected
            // at the container boundary instead of deep in a decoder.
            crate::Artifact::from_bytes(b)?;
            return Ok(Self {
                global_dims: [0, 0, 0],
                chunks: vec![(
                    ChunkEntry {
                        z_offset: 0,
                        dims: [0, 0, 0],
                        model_tag: 0,
                    },
                    b.to_vec(),
                )],
            });
        }
        if b.len() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                what: "chunked header",
            });
        }
        if b.get(..4) != Some(MAGIC.as_slice()) {
            return Err(DecodeError::Corrupt {
                what: "chunked magic",
            });
        }
        let u32_at = |pos: usize| -> DecodeResult<u32> {
            b.get(pos..pos.saturating_add(4))
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or(DecodeError::Truncated {
                    what: "chunked header field",
                })
        };
        let version = b
            .get(4..6)
            .and_then(|s| s.try_into().ok())
            .map(u16::from_le_bytes)
            .ok_or(DecodeError::Truncated {
                what: "chunked version",
            })?;
        if version != FORMAT_VERSION {
            return Err(DecodeError::UnsupportedVersion {
                found: version.min(u8::MAX as u16) as u8,
                supported: FORMAT_VERSION as u8,
            });
        }
        let global_dims = [u32_at(6)?, u32_at(10)?, u32_at(14)?];
        let count = u32_at(18)? as usize;
        if count > MAX_CHUNK_COUNT {
            return Err(DecodeError::Corrupt {
                what: "chunked chunk count",
            });
        }

        // The whole directory must also fit before anything is allocated,
        // so a corrupt count cannot trigger a huge up-front allocation.
        let dir_len = count
            .checked_mul(ENTRY_LEN)
            .and_then(|d| d.checked_add(HEADER_LEN))
            .ok_or(DecodeError::Corrupt {
                what: "chunked directory size overflow",
            })?;
        if b.len() < dir_len {
            return Err(DecodeError::Truncated {
                what: "chunked directory",
            });
        }

        let mut entries = Vec::with_capacity(count);
        let mut lens = Vec::with_capacity(count);
        for i in 0..count {
            let pos = HEADER_LEN + i * ENTRY_LEN;
            let tag = *b.get(pos + 16).ok_or(DecodeError::Truncated {
                what: "chunked entry tag",
            })?;
            entries.push(ChunkEntry {
                z_offset: u32_at(pos)?,
                dims: [u32_at(pos + 4)?, u32_at(pos + 8)?, u32_at(pos + 12)?],
                model_tag: tag,
            });
            let len = b
                .get(pos.saturating_add(17)..pos.saturating_add(25))
                .and_then(|s| s.try_into().ok())
                .map(|s: [u8; 8]| u64::from_le_bytes(s) as usize)
                .ok_or(DecodeError::Truncated {
                    what: "chunked entry length",
                })?;
            lens.push(len);
        }

        let mut pos = dir_len;
        let mut chunks = Vec::with_capacity(count);
        for (entry, len) in entries.into_iter().zip(lens) {
            let payload = b
                .get(pos..pos.saturating_add(len))
                .ok_or(DecodeError::Truncated {
                    what: "chunked payload",
                })?
                .to_vec();
            pos += len;
            chunks.push((entry, payload));
        }
        if pos != b.len() {
            return Err(DecodeError::Corrupt {
                what: "chunked trailing bytes",
            });
        }
        Ok(Self {
            global_dims,
            chunks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChunkedArtifact {
        let mut c = ChunkedArtifact::new([16, 16, 16]);
        c.push(
            ChunkEntry {
                z_offset: 0,
                dims: [16, 16, 8],
                model_tag: 4,
            },
            vec![1, 2, 3, 4, 5],
        );
        c.push(
            ChunkEntry {
                z_offset: 8,
                dims: [16, 16, 8],
                model_tag: 4,
            },
            vec![9, 9],
        );
        c
    }

    #[test]
    fn header_roundtrips() {
        let c = sample();
        let bytes = c.to_bytes();
        assert_eq!(bytes.len(), c.nbytes());
        let d = ChunkedArtifact::from_bytes(&bytes).expect("parse");
        assert_eq!(c, d);
        assert_eq!(d.global_dims, [16, 16, 16]);
        assert_eq!(d.len(), 2);
        let parts: Vec<_> = d.chunks().collect();
        assert_eq!(parts[0].0.z_offset, 0);
        assert_eq!(parts[1].0.z_offset, 8);
        assert_eq!(parts[0].1, &[1, 2, 3, 4, 5]);
        assert_eq!(parts[1].1, &[9, 9]);
    }

    #[test]
    fn absurd_chunk_count_is_rejected_before_allocating() {
        // A header claiming u32::MAX chunks (a ~100 GiB directory) must
        // fail typed at the MAX_CHUNK_COUNT ceiling, not size buffers
        // from a hostile count field.
        let mut bytes = sample().to_bytes();
        bytes[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            ChunkedArtifact::from_bytes(&bytes),
            Err(DecodeError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_container_roundtrips() {
        let c = ChunkedArtifact::new([4, 4, 4]);
        let d = ChunkedArtifact::from_bytes(&c.to_bytes()).expect("parse");
        assert!(d.is_empty());
        assert_eq!(d.global_dims, [4, 4, 4]);
    }

    #[test]
    fn version0_stream_wraps_as_single_chunk() {
        // A pre-chunking artifact begins with "LRM1"; it must come back
        // as a one-chunk container holding the stream verbatim.
        let mut a = crate::Artifact::new();
        a.push("meta", vec![7, 7, 7]);
        a.push("delta", vec![1, 2, 3]);
        let v0 = a.to_bytes();
        let c = ChunkedArtifact::from_bytes(&v0).expect("v0 wrap");
        assert_eq!(c.len(), 1);
        assert_eq!(c.global_dims, [0, 0, 0]);
        let (entry, payload) = c.chunks().next().expect("one chunk");
        assert_eq!(entry.z_offset, 0);
        assert_eq!(payload, &v0[..]);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let good = sample().to_bytes();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            ChunkedArtifact::from_bytes(&bad),
            Err(DecodeError::Corrupt { .. })
        ));
        // Unknown (future) version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            ChunkedArtifact::from_bytes(&bad),
            Err(DecodeError::UnsupportedVersion { .. })
        ));
        // Truncated payload.
        assert!(ChunkedArtifact::from_bytes(&good[..good.len() - 1]).is_err());
        // Truncated directory.
        assert!(ChunkedArtifact::from_bytes(&good[..30]).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            ChunkedArtifact::from_bytes(&bad),
            Err(DecodeError::Corrupt { .. })
        ));
        // Too short for a header.
        assert!(ChunkedArtifact::from_bytes(b"LRMC").is_err());
    }

    #[test]
    fn truncated_v0_wrap_is_rejected() {
        // A stream that starts with the v0 magic but is otherwise
        // truncated must error at the container boundary, not deep in a
        // decoder downstream.
        let mut a = crate::Artifact::new();
        a.push("meta", vec![9; 32]);
        let v0 = a.to_bytes();
        for cut in 5..v0.len() {
            assert!(
                ChunkedArtifact::from_bytes(&v0[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn payload_accounting_matches() {
        let c = sample();
        assert_eq!(c.payload_bytes(), 7);
        assert_eq!(c.nbytes(), 22 + 2 * 25 + 7);
    }
}
