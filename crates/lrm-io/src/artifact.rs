//! Self-describing binary container for compressed outputs.
//!
//! A preconditioned snapshot is several byte streams (reduced
//! representation, compressed delta, metadata); the [`Artifact`] bundles
//! named sections into one buffer with a magic header and length-prefixed
//! layout, so it can be written as a single object and parsed back
//! without external framing.

use lrm_compress::{DecodeError, DecodeResult};

/// Magic bytes identifying an artifact stream.
const MAGIC: &[u8; 4] = b"LRM1";

/// A named-section binary container.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Artifact {
    sections: Vec<(String, Vec<u8>)>,
}

impl Artifact {
    /// An empty artifact.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a named section (names need not be unique; lookup returns
    /// the first match).
    pub fn push(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.sections.push((name.into(), bytes));
    }

    /// First section with `name`.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Iterates `(name, bytes)` pairs in insertion order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections
            .iter()
            .map(|(n, b)| (n.as_str(), b.as_slice()))
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections are present.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Total payload bytes across sections (the artifact's "compressed
    /// size" for ratio computations; header overhead excluded).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|(_, b)| b.len()).sum()
    }

    /// Serializes: magic, section count, then per section a
    /// length-prefixed name and length-prefixed payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.payload_bytes());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, bytes) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Parses a buffer produced by [`Artifact::to_bytes`]. Returns a
    /// [`DecodeError`] on bad magic or truncation; never panics.
    pub fn from_bytes(data: &[u8]) -> DecodeResult<Self> {
        if data.len() < 8 {
            return Err(DecodeError::Truncated {
                what: "artifact header",
            });
        }
        if data.get(..4) != Some(MAGIC.as_slice()) {
            return Err(DecodeError::Corrupt {
                what: "artifact magic",
            });
        }
        let count = data
            .get(4..8)
            .and_then(|s| s.try_into().ok())
            .map(|s: [u8; 4]| u32::from_le_bytes(s) as usize)
            .ok_or(DecodeError::Truncated {
                what: "artifact section count",
            })?;
        // A section costs at least 12 bytes (name length + payload
        // length); cap the pre-allocation so a corrupt count cannot
        // trigger a huge allocation before the truncation is detected.
        let mut pos = 8usize;
        let mut sections = Vec::with_capacity(count.min(data.len() / 12));
        for _ in 0..count {
            let nlen = data
                .get(pos..pos.saturating_add(4))
                .and_then(|s| s.try_into().ok())
                .map(|s: [u8; 4]| u32::from_le_bytes(s) as usize)
                .ok_or(DecodeError::Truncated {
                    what: "artifact name length",
                })?;
            pos += 4;
            let name = std::str::from_utf8(data.get(pos..pos.saturating_add(nlen)).ok_or(
                DecodeError::Truncated {
                    what: "artifact section name",
                },
            )?)
            .map_err(|_| DecodeError::Corrupt {
                what: "artifact name not utf-8",
            })?
            .to_string();
            pos += nlen;
            let blen = data
                .get(pos..pos.saturating_add(8))
                .and_then(|s| s.try_into().ok())
                .map(|s: [u8; 8]| u64::from_le_bytes(s) as usize)
                .ok_or(DecodeError::Truncated {
                    what: "artifact payload length",
                })?;
            pos += 8;
            let bytes = data
                .get(pos..pos.saturating_add(blen))
                .ok_or(DecodeError::Truncated {
                    what: "artifact section payload",
                })?
                .to_vec();
            pos += blen;
            sections.push((name, bytes));
        }
        Ok(Self { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_sections() {
        let mut a = Artifact::new();
        a.push("reduced", vec![1, 2, 3]);
        a.push("delta", vec![4; 1000]);
        a.push("meta", Vec::new());
        let b = Artifact::from_bytes(&a.to_bytes()).expect("roundtrip");
        assert_eq!(a, b);
        assert_eq!(b.get("delta").map(|s| s.len()), Some(1000));
        assert_eq!(b.get("meta"), Some(&[][..]));
        assert_eq!(b.get("missing"), None);
    }

    #[test]
    fn payload_bytes_counts_sections_only() {
        let mut a = Artifact::new();
        a.push("x", vec![0; 10]);
        a.push("y", vec![0; 5]);
        assert_eq!(a.payload_bytes(), 15);
        assert!(a.to_bytes().len() > 15);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(Artifact::from_bytes(b"NOPE\x00\x00\x00\x00").is_err());
        assert!(Artifact::from_bytes(&[]).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut a = Artifact::new();
        a.push("s", vec![7; 64]);
        let bytes = a.to_bytes();
        assert!(Artifact::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn empty_artifact_roundtrips() {
        let a = Artifact::new();
        let b = Artifact::from_bytes(&a.to_bytes()).expect("roundtrip");
        assert!(b.is_empty());
    }

    #[test]
    fn unicode_names_roundtrip() {
        let mut a = Artifact::new();
        a.push("δ-delta", vec![1]);
        let b = Artifact::from_bytes(&a.to_bytes()).expect("roundtrip");
        assert_eq!(b.get("δ-delta"), Some(&[1][..]));
    }
}
