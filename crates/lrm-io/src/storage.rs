//! Parametric parallel-storage timing model.
//!
//! Table IV of the paper times N-to-N writes of Heat3d output on Titan's
//! Lustre file system. Without that testbed, the *shape* of the result —
//! compression shrinks I/O time; heavyweight preconditioning erases the
//! gain unless staging absorbs it — is a bandwidth/latency accounting
//! exercise. [`StorageModel`] performs that accounting with explicit,
//! documented parameters; the defaults are tuned so the baseline row of
//! Table IV (52.48 s for 64 ranks × 16.7 GB) is reproduced.

/// Timing model of an N-to-N parallel file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageModel {
    /// Peak aggregate file-system bandwidth (bytes/s).
    pub aggregate_bw: f64,
    /// Per-process write bandwidth ceiling (bytes/s).
    pub per_proc_bw: f64,
    /// Per-write fixed latency (s): open/metadata/close costs.
    pub latency: f64,
}

impl Default for StorageModel {
    fn default() -> Self {
        // Tuned to the paper's baseline: 64 procs x 16.7 GB in 52.48 s
        // => ~20.4 GB/s observed aggregate.
        Self {
            aggregate_bw: 20.4e9,
            per_proc_bw: 1.2e9,
            latency: 0.05,
        }
    }
}

impl StorageModel {
    /// Time for `nprocs` processes to each write `bytes_per_proc` bytes
    /// in an N-to-N pattern: bounded by both the per-process ceiling and
    /// the shared aggregate bandwidth.
    pub fn write_time(&self, nprocs: usize, bytes_per_proc: f64) -> f64 {
        assert!(nprocs > 0, "storage: need at least one process");
        assert!(bytes_per_proc >= 0.0 && bytes_per_proc.is_finite());
        let total = bytes_per_proc * nprocs as f64;
        let effective_bw = self.aggregate_bw.min(self.per_proc_bw * nprocs as f64);
        self.latency + total / effective_bw
    }

    /// Read time uses the same model (parallel file systems are roughly
    /// symmetric at this granularity).
    pub fn read_time(&self, nprocs: usize, bytes_per_proc: f64) -> f64 {
        self.write_time(nprocs, bytes_per_proc)
    }
}

/// Timing model of the interconnect hop to a staging node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    /// Link bandwidth per node (bytes/s).
    pub bw_per_node: f64,
    /// Message latency (s).
    pub latency: f64,
    /// Number of staging nodes absorbing the traffic.
    pub staging_nodes: usize,
}

impl Default for InterconnectModel {
    fn default() -> Self {
        // Gemini-class interconnect: the paper's staging row moves
        // 64 x 16.7 GB to one staging node in 13.17 s => ~81 GB/s
        // injected; model it as the sum of per-node links.
        Self {
            bw_per_node: 81.0e9,
            latency: 0.01,
            staging_nodes: 1,
        }
    }
}

impl InterconnectModel {
    /// Time for `nprocs` processes to ship `bytes_per_proc` each to the
    /// staging node(s); the application blocks only for this transfer.
    pub fn send_time(&self, nprocs: usize, bytes_per_proc: f64) -> f64 {
        assert!(nprocs > 0, "interconnect: need at least one process");
        let total = bytes_per_proc * nprocs as f64;
        let bw = self.bw_per_node * self.staging_nodes.max(1) as f64;
        self.latency + total / bw
    }
}

/// One row of a Table IV-style end-to-end accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct EndToEndRow {
    /// Scheme label (e.g. `"PCA(ZFP)+I/O"`).
    pub label: String,
    /// Time spent compressing, application-visible (s). `None` when the
    /// scheme does no inline compression.
    pub compression_time: Option<f64>,
    /// Time spent on I/O (or on the staging transfer), application-visible (s).
    pub io_time: f64,
}

impl EndToEndRow {
    /// Application-visible total.
    pub fn total(&self) -> f64 {
        self.compression_time.unwrap_or(0.0) + self.io_time
    }
}

/// Computes the six Table IV rows from measured compression throughputs.
///
/// * `raw_bytes` — uncompressed bytes per process.
/// * `ratios` — compression ratios (ZFP, SZ, PCA+ZFP, PCA+SZ).
/// * `comp_times` — inline compression seconds (same order).
pub fn table4_rows(
    storage: &StorageModel,
    net: &InterconnectModel,
    nprocs: usize,
    raw_bytes: f64,
    labels: [&str; 4],
    ratios: [f64; 4],
    comp_times: [f64; 4],
) -> Vec<EndToEndRow> {
    let mut rows = Vec::with_capacity(6);
    rows.push(EndToEndRow {
        label: "Baseline (no compression)".to_string(),
        compression_time: None,
        io_time: storage.write_time(nprocs, raw_bytes),
    });
    for i in 0..4 {
        rows.push(EndToEndRow {
            label: format!("{}+I/O", labels[i]),
            compression_time: Some(comp_times[i]),
            io_time: storage.write_time(nprocs, raw_bytes / ratios[i]),
        });
    }
    // Staging: the application only pays the interconnect send; the
    // staging node compresses and writes asynchronously.
    rows.push(EndToEndRow {
        label: "Staging+PCA+I/O".to_string(),
        compression_time: None,
        io_time: net.send_time(nprocs, raw_bytes),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_reproduces_baseline_row() {
        let m = StorageModel::default();
        let t = m.write_time(64, 16.7e9);
        assert!((t - 52.48).abs() < 2.0, "baseline {t} vs paper 52.48");
    }

    #[test]
    fn compression_shrinks_io_time() {
        let m = StorageModel::default();
        let raw = m.write_time(64, 16.7e9);
        let compressed = m.write_time(64, 16.7e9 / 4.0);
        assert!(compressed < raw / 2.0);
    }

    #[test]
    fn small_proc_counts_hit_per_proc_ceiling() {
        let m = StorageModel::default();
        // One writer cannot exceed its own link bandwidth.
        let t = m.write_time(1, 12e9);
        assert!(t >= 12e9 / m.per_proc_bw, "t = {t}");
    }

    #[test]
    fn staging_send_is_faster_than_inline_path() {
        // The crux of Table IV: shipping raw bytes over the interconnect
        // beats compress+write inline when compression is slow.
        let net = InterconnectModel::default();
        let send = net.send_time(64, 16.7e9);
        assert!((send - 13.17).abs() < 2.0, "staging {send} vs paper 13.17");
    }

    #[test]
    fn table4_shape_matches_paper() {
        // Measured-ish inputs: ZFP/SZ fast with modest ratios; PCA slow
        // with high ratios. The paper's orderings must hold.
        let rows = table4_rows(
            &StorageModel::default(),
            &InterconnectModel::default(),
            64,
            16.7e9,
            ["ZFP", "SZ", "PCA(ZFP)", "PCA(SZ)"],
            [2.6, 2.7, 5.7, 5.8],
            [12.09, 9.72, 44.87, 42.95],
        );
        let total: Vec<f64> = rows.iter().map(|r| r.total()).collect();
        // ZFP+I/O and SZ+I/O beat the baseline.
        assert!(total[1] < total[0] && total[2] < total[0]);
        // PCA inline is ~baseline (compression overhead eats the gain).
        assert!((total[3] - total[0]).abs() / total[0] < 0.25);
        // Staging wins everything.
        let staging = total[5];
        assert!(staging < total.iter().take(5).fold(f64::INFINITY, |a, &b| a.min(b)));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_procs_rejected() {
        StorageModel::default().write_time(0, 1.0);
    }
}
