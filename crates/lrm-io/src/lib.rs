//! Storage substrate: artifact container, parallel-I/O timing model, and
//! an asynchronous staging pipeline.
//!
//! Together these reproduce the infrastructure behind Table IV of the
//! paper:
//!
//! * [`artifact::Artifact`] — the on-disk format for a preconditioned
//!   snapshot (reduced representation + compressed delta + metadata).
//! * [`chunked::ChunkedArtifact`] — the multi-chunk container the
//!   chunk-parallel engine writes: a versioned header with a per-chunk
//!   directory over independent single-chunk artifact payloads.
//! * [`storage::StorageModel`] / [`storage::InterconnectModel`] — the
//!   parametric timing model for Titan-style Lustre N-to-N writes and the
//!   staging interconnect (substitution documented in DESIGN.md).
//! * [`staging::StagingPipeline`] — a real producer/consumer staging
//!   implementation over bounded channels, demonstrating that a slow
//!   preconditioner costs the application almost nothing once staging
//!   absorbs it.

// Container parsers consume untrusted bytes and must surface failures
// as `DecodeError`, never abort. Promoted per the decode-path contract
// in DESIGN.md; test code may still panic freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
pub mod chunked;
pub mod disk;
pub mod staging;
pub mod storage;

pub use artifact::Artifact;
pub use chunked::{ChunkEntry, ChunkedArtifact, FORMAT_VERSION};
pub use disk::{DiskStore, WriteReceipt};
pub use lrm_compress::{DecodeError, DecodeResult};
pub use staging::{StagedResult, StagingPipeline};
pub use storage::{table4_rows, EndToEndRow, InterconnectModel, StorageModel};
