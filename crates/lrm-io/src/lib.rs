//! Storage substrate: artifact container, parallel-I/O timing model, and
//! an asynchronous staging pipeline.
//!
//! Together these reproduce the infrastructure behind Table IV of the
//! paper:
//!
//! * [`artifact::Artifact`] — the on-disk format for a preconditioned
//!   snapshot (reduced representation + compressed delta + metadata).
//! * [`storage::StorageModel`] / [`storage::InterconnectModel`] — the
//!   parametric timing model for Titan-style Lustre N-to-N writes and the
//!   staging interconnect (substitution documented in DESIGN.md).
//! * [`staging::StagingPipeline`] — a real producer/consumer staging
//!   implementation over crossbeam channels, demonstrating that a slow
//!   preconditioner costs the application almost nothing once staging
//!   absorbs it.

pub mod artifact;
pub mod disk;
pub mod staging;
pub mod storage;

pub use artifact::Artifact;
pub use disk::{DiskStore, WriteReceipt};
pub use staging::{StagedResult, StagingPipeline};
pub use storage::{table4_rows, EndToEndRow, InterconnectModel, StorageModel};
