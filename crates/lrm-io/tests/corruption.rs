//! Corruption-robustness harness for the container layer: every strict
//! prefix of a serialized container must be rejected with a
//! `DecodeError`, and ≥ 1000 deterministically mutated streams per
//! container format must never panic or over-allocate. Companion to the
//! codec-level harness in `lrm-compress/tests/corruption.rs`; the
//! static side of the same contract is enforced by `lrm-lint`.

use lrm_io::{Artifact, ChunkEntry, ChunkedArtifact};
use lrm_rng::Rng64;

const FLIP_TRIALS: usize = 1200;
const GARBAGE_TRIALS: usize = 500;

fn sample_artifact(rng: &mut Rng64) -> Artifact {
    let mut a = Artifact::new();
    a.push("meta", rng.vec_u8(48));
    a.push("reduced", rng.vec_u8(600));
    a.push("delta", rng.vec_u8(1200));
    a.push("empty", Vec::new());
    a
}

fn sample_chunked(rng: &mut Rng64) -> ChunkedArtifact {
    let mut c = ChunkedArtifact::new([16, 16, 12]);
    for z in 0..4u32 {
        c.push(
            ChunkEntry {
                z_offset: z * 3,
                dims: [16, 16, 3],
                model_tag: z as u8,
            },
            rng.vec_u8(300 + 7 * z as usize),
        );
    }
    c
}

fn flip_bytes(rng: &mut Rng64, stream: &mut [u8]) {
    if stream.is_empty() {
        return;
    }
    for _ in 0..1 + rng.range_usize(4) {
        let at = rng.range_usize(stream.len());
        let mask = 1 + rng.range_usize(255) as u8;
        stream[at] ^= mask;
    }
}

#[test]
fn artifact_prefix_truncation_is_always_an_error() {
    let bytes = sample_artifact(&mut Rng64::new(7)).to_bytes();
    for cut in 0..bytes.len() {
        assert!(
            Artifact::from_bytes(&bytes[..cut]).is_err(),
            "artifact prefix of {cut}/{} bytes decoded Ok",
            bytes.len()
        );
    }
    assert!(Artifact::from_bytes(&bytes).is_ok());
}

#[test]
fn chunked_prefix_truncation_is_always_an_error() {
    let bytes = sample_chunked(&mut Rng64::new(8)).to_bytes();
    for cut in 0..bytes.len() {
        assert!(
            ChunkedArtifact::from_bytes(&bytes[..cut]).is_err(),
            "chunked prefix of {cut}/{} bytes decoded Ok",
            bytes.len()
        );
    }
    assert!(ChunkedArtifact::from_bytes(&bytes).is_ok());
}

#[test]
fn artifact_byte_flips_never_panic() {
    let mut rng = Rng64::new(9);
    let bytes = sample_artifact(&mut rng).to_bytes();
    for _ in 0..FLIP_TRIALS {
        let mut mutated = bytes.clone();
        flip_bytes(&mut rng, &mut mutated);
        let _ = Artifact::from_bytes(&mutated);
    }
}

#[test]
fn chunked_byte_flips_never_panic() {
    let mut rng = Rng64::new(10);
    let bytes = sample_chunked(&mut rng).to_bytes();
    for _ in 0..FLIP_TRIALS {
        let mut mutated = bytes.clone();
        flip_bytes(&mut rng, &mut mutated);
        let _ = ChunkedArtifact::from_bytes(&mutated);
    }
}

#[test]
fn garbage_streams_never_panic_in_either_container() {
    let mut rng = Rng64::new(11);
    for _ in 0..GARBAGE_TRIALS {
        let len = rng.range_usize(256);
        let garbage = rng.vec_u8(len);
        let _ = Artifact::from_bytes(&garbage);
        let _ = ChunkedArtifact::from_bytes(&garbage);
    }
    // Valid magic + garbage body, the worst case for header parsers.
    for magic in [*b"LRM1", *b"LRMC"] {
        for _ in 0..GARBAGE_TRIALS {
            let len = rng.range_usize(256);
            let mut stream = magic.to_vec();
            stream.extend(rng.vec_u8(len));
            let _ = Artifact::from_bytes(&stream);
            let _ = ChunkedArtifact::from_bytes(&stream);
        }
    }
}
