//! Lossy-codec selection with the paper's dual error bounds.
//!
//! Section V-B: "different relative error bounds are applied to the
//! original data and delta" — the delta is much smaller in magnitude, so
//! holding it to the original's relative bound would over-spend bits.
//! The paper's settings, reproduced by the constructors here:
//!
//! * SZ — point-wise relative `1e-5` for original data / reduced
//!   representations, `1e-3` for deltas;
//! * ZFP — fixed precision 16 bits for original data, 8 bits for deltas;
//! * FPC — lossless, for the Fig. 3 baseline bars and for callers that
//!   need bit-exact deltas.
//!
//! [`LossyCodec`] is a serializable *configuration*; [`LossyCodec::as_codec`]
//! instantiates the matching [`Codec`] implementation, and `LossyCodec`
//! itself implements [`Codec`] by delegation, so it can be passed anywhere
//! a `&dyn Codec` is expected.

use lrm_compress::{Codec, DecodeError, DecodeResult, Fpc, Shape, Sz, Zfp};

/// A concrete lossy-codec configuration, serializable into artifact
/// metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossyCodec {
    /// SZ with the paper's (block-based) point-wise relative bound.
    SzRel(f64),
    /// SZ with an absolute bound.
    SzAbs(f64),
    /// ZFP in fixed-precision mode.
    ZfpPrecision(u32),
    /// FPC lossless compression at the given table level (4..=24).
    FpcLossless(u32),
}

impl LossyCodec {
    /// Instantiates the concrete compressor this configuration names.
    ///
    /// This is the single point where configuration becomes
    /// implementation; every compress/decompress path funnels through it.
    pub fn as_codec(&self) -> Box<dyn Codec> {
        match *self {
            LossyCodec::SzRel(rel) => Box::new(Sz::block_rel(rel)),
            LossyCodec::SzAbs(abs) => Box::new(Sz::absolute(abs)),
            LossyCodec::ZfpPrecision(p) => Box::new(Zfp::fixed_precision(p)),
            LossyCodec::FpcLossless(level) => Box::new(Fpc::new(level)),
        }
    }

    /// Compresses `data` under this codec.
    pub fn compress(&self, data: &[f64], shape: Shape) -> Vec<u8> {
        self.as_codec().compress(data, shape)
    }

    /// Decompresses a buffer produced by [`LossyCodec::compress`].
    /// Corrupt or truncated input is reported as a [`DecodeError`];
    /// this never panics.
    pub fn decompress(&self, bytes: &[u8], shape: Shape) -> DecodeResult<Vec<f64>> {
        self.as_codec().decompress(bytes, shape)
    }

    /// Decompresses a buffer this codec itself just produced, where a
    /// decode failure would mean an encoder bug rather than bad input.
    ///
    /// # Panics
    /// Panics if the stream does not decode — only use on freshly
    /// encoded, trusted bytes.
    pub(crate) fn decompress_own(&self, bytes: &[u8], shape: Shape) -> Vec<f64> {
        self.as_codec()
            .decompress(bytes, shape)
            .expect("decode of freshly encoded stream")
    }

    /// Short display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            LossyCodec::SzRel(_) | LossyCodec::SzAbs(_) => "SZ",
            LossyCodec::ZfpPrecision(_) => "ZFP",
            LossyCodec::FpcLossless(_) => "FPC",
        }
    }

    /// Serializes into 9 bytes (tag + parameter).
    pub fn to_bytes(&self) -> [u8; 9] {
        let mut out = [0u8; 9];
        match *self {
            LossyCodec::SzRel(r) => {
                out[0] = 0;
                out[1..].copy_from_slice(&r.to_le_bytes());
            }
            LossyCodec::SzAbs(a) => {
                out[0] = 1;
                out[1..].copy_from_slice(&a.to_le_bytes());
            }
            LossyCodec::ZfpPrecision(p) => {
                out[0] = 2;
                out[1..9].copy_from_slice(&(p as u64).to_le_bytes());
            }
            LossyCodec::FpcLossless(level) => {
                out[0] = 3;
                out[1..9].copy_from_slice(&(level as u64).to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`LossyCodec::to_bytes`].
    pub fn from_bytes(b: &[u8]) -> DecodeResult<Self> {
        let raw = b.get(..9).ok_or(DecodeError::Truncated {
            what: "lossy-codec descriptor",
        })?;
        let param_bytes = [
            raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7], raw[8],
        ];
        let param = f64::from_le_bytes(param_bytes);
        let int_param = u64::from_le_bytes(param_bytes) as u32;
        match raw[0] {
            0 => Ok(LossyCodec::SzRel(param)),
            1 => Ok(LossyCodec::SzAbs(param)),
            2 => Ok(LossyCodec::ZfpPrecision(int_param)),
            3 => Ok(LossyCodec::FpcLossless(int_param)),
            tag => Err(DecodeError::UnknownTag {
                what: "lossy-codec descriptor",
                tag,
            }),
        }
    }
}

/// [`LossyCodec`] is itself a [`Codec`]: the enum delegates to the
/// compressor it configures, so pipeline code can treat configurations
/// and concrete codecs uniformly.
impl Codec for LossyCodec {
    fn name(&self) -> &'static str {
        LossyCodec::name(self)
    }

    fn compress(&self, data: &[f64], shape: Shape) -> Vec<u8> {
        LossyCodec::compress(self, data, shape)
    }

    fn decompress(&self, bytes: &[u8], shape: Shape) -> DecodeResult<Vec<f64>> {
        LossyCodec::decompress(self, bytes, shape)
    }
}

/// The paper's SZ setting: rel `1e-5` for originals/representations,
/// rel `1e-3` for deltas.
pub fn sz_paper_bounds() -> (LossyCodec, LossyCodec) {
    (LossyCodec::SzRel(1e-5), LossyCodec::SzRel(1e-3))
}

/// The paper's ZFP setting: 16-bit precision for originals, 8-bit for
/// deltas.
pub fn zfp_paper_bounds() -> (LossyCodec, LossyCodec) {
    (LossyCodec::ZfpPrecision(16), LossyCodec::ZfpPrecision(8))
}

/// Lossless FPC at the paper's level-20 setting, for the Fig. 3 FPC bars.
pub fn fpc_paper() -> Fpc {
    Fpc::new(20)
}

/// The FPC baseline as a [`LossyCodec`] configuration (level 20, as in
/// the paper's Fig. 3 bars).
pub fn fpc_paper_codec() -> LossyCodec {
    LossyCodec::FpcLossless(20)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant, for exhaustive serialization tests.
    fn all_variants() -> [LossyCodec; 4] {
        [
            LossyCodec::SzRel(1e-5),
            LossyCodec::SzAbs(0.25),
            LossyCodec::ZfpPrecision(16),
            LossyCodec::FpcLossless(20),
        ]
    }

    #[test]
    fn codec_bytes_roundtrip_all_variants() {
        for c in all_variants() {
            assert_eq!(LossyCodec::from_bytes(&c.to_bytes()), Ok(c));
        }
        assert_eq!(
            LossyCodec::from_bytes(&[9; 9]),
            Err(DecodeError::UnknownTag {
                what: "lossy-codec descriptor",
                tag: 9
            })
        );
        assert!(matches!(
            LossyCodec::from_bytes(&[0]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn compress_decompress_dispatches() {
        let shape = Shape::d1(100);
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin() + 2.0).collect();
        for c in [
            LossyCodec::SzRel(1e-4),
            LossyCodec::SzAbs(1e-4),
            LossyCodec::ZfpPrecision(32),
            LossyCodec::FpcLossless(12),
        ] {
            let d = c
                .decompress(&c.compress(&data, shape), shape)
                .expect("decode");
            for (a, b) in data.iter().zip(&d) {
                assert!((a - b).abs() < 1e-3, "{c:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fpc_variant_is_bit_exact() {
        let shape = Shape::d1(257);
        let data: Vec<f64> = (0..257).map(|i| (i as f64 * 0.7).tan()).collect();
        let c = LossyCodec::FpcLossless(12);
        let d = c
            .decompress(&c.compress(&data, shape), shape)
            .expect("decode");
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn trait_and_inherent_methods_agree() {
        let shape = Shape::d1(64);
        let data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).cos()).collect();
        for c in all_variants() {
            let via_enum = c.compress(&data, shape);
            let via_box = c.as_codec().compress(&data, shape);
            let via_dyn = (&c as &dyn Codec).compress(&data, shape);
            assert_eq!(via_enum, via_box, "{c:?}");
            assert_eq!(via_enum, via_dyn, "{c:?}");
            assert_eq!(
                c.name(),
                c.as_codec().name().split('-').next().unwrap_or("")
            );
        }
    }

    #[test]
    fn paper_bounds_are_as_published() {
        let (o, d) = sz_paper_bounds();
        assert_eq!(o, LossyCodec::SzRel(1e-5));
        assert_eq!(d, LossyCodec::SzRel(1e-3));
        let (o, d) = zfp_paper_bounds();
        assert_eq!(o, LossyCodec::ZfpPrecision(16));
        assert_eq!(d, LossyCodec::ZfpPrecision(8));
        assert_eq!(fpc_paper_codec(), LossyCodec::FpcLossless(20));
    }
}
