//! Partitioned-matrix dimension reduction — the paper's future work #1.
//!
//! "The first [future direction] is to implement the proposed reduced
//! methods in partitioned matrix to further reduce the compression
//! overhead."
//!
//! The field's matrix view is cut into row blocks; PCA/SVD is fitted per
//! block, and the blocks are processed **in parallel on the workspace
//! worker pool**. Two effects reduce overhead:
//!
//! * the SVD's `O(m²n)` term becomes `O(m²n / B)` across `B` blocks, and
//! * blocks run concurrently, so wall-clock shrinks by up to the core
//!   count even where total work is unchanged (PCA).
//!
//! The quality trade-off (each block fits its own basis, so `k` per block
//! may exceed the global `k`) is measured by the `ablation_partitioned`
//! bench and recorded in EXPERIMENTS.md.

use crate::codec::LossyCodec;
use crate::dimred::DimRedOutput;
use lrm_compress::{DecodeError, DecodeResult, Shape};
use lrm_datasets::Field;
use lrm_linalg::{svd, Matrix, Pca};
use lrm_parallel::WorkerPool;

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn get_u32(b: &[u8], pos: &mut usize) -> DecodeResult<usize> {
    let s = b
        .get(*pos..pos.saturating_add(4))
        .ok_or(DecodeError::Truncated {
            what: "partitioned header field",
        })?;
    *pos += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]) as usize)
}

fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_f64s(b: &[u8], pos: &mut usize, count: usize) -> DecodeResult<Vec<f64>> {
    let nbytes = count.checked_mul(8).ok_or(DecodeError::Corrupt {
        what: "partitioned block size overflow",
    })?;
    let s = b
        .get(*pos..pos.saturating_add(nbytes))
        .ok_or(DecodeError::Truncated {
            what: "partitioned f64 block",
        })?;
    *pos += nbytes;
    Ok(s.chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// Row ranges of the `blocks` partitions of an `m`-row matrix.
fn row_blocks(m: usize, blocks: usize) -> Vec<(usize, usize)> {
    let b = blocks.clamp(1, m.max(1));
    (0..b).map(|i| (i * m / b, (i + 1) * m / b)).collect()
}

/// One fitted block: its reduced representation plus the base
/// reconstruction of its rows.
struct BlockFit {
    rep: Vec<u8>,
    approx: Vec<f64>, // row-major rows of this block
    k: usize,
}

/// Fits PCA on one row block and serializes its representation.
fn fit_pca_block(
    rows: &[f64],
    mrows: usize,
    n: usize,
    variance_fraction: f64,
    codec: &LossyCodec,
) -> BlockFit {
    let mat = Matrix::from_vec(mrows, n, rows.to_vec());
    let pca = Pca::fit(&mat);
    let k = pca.components_for_variance(variance_fraction).max(1).min(n);
    let scores = pca.transform(&mat, k);
    let scores_shape = Shape::d2(k, mrows);
    let scores_bytes = codec.compress(scores.as_slice(), scores_shape);

    let mut rep = Vec::new();
    put_u32(&mut rep, mrows);
    put_u32(&mut rep, k);
    put_f64s(&mut rep, &pca.means);
    let basis = pca.components.take_cols(k);
    put_f64s(&mut rep, basis.as_slice());
    put_u32(&mut rep, scores_bytes.len());
    rep.extend_from_slice(&scores_bytes);

    let scores_recon =
        Matrix::from_vec(mrows, k, codec.decompress_own(&scores_bytes, scores_shape));
    let approx = scores_recon.matmul(&basis.transpose());
    let approx: Vec<f64> = approx
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, v)| v + pca.means[i % n])
        .collect();
    BlockFit { rep, approx, k }
}

/// Fits truncated SVD on one row block and serializes its representation.
fn fit_svd_block(
    rows: &[f64],
    mrows: usize,
    n: usize,
    energy_fraction: f64,
    codec: &LossyCodec,
) -> BlockFit {
    let mat = Matrix::from_vec(mrows, n, rows.to_vec());
    let dec = svd(&mat);
    let k = dec
        .rank_for_energy(energy_fraction)
        .max(1)
        .min(n.min(mrows));
    let uk = dec.u.take_cols(k);
    let vk = dec.v.take_cols(k);
    let sigma = &dec.sigma[..k];

    let u_shape = Shape::d2(k, mrows);
    let u_bytes = codec.compress(uk.as_slice(), u_shape);

    let mut rep = Vec::new();
    put_u32(&mut rep, mrows);
    put_u32(&mut rep, k);
    put_f64s(&mut rep, sigma);
    put_f64s(&mut rep, vk.as_slice());
    put_u32(&mut rep, u_bytes.len());
    rep.extend_from_slice(&u_bytes);

    let u_recon = Matrix::from_vec(mrows, k, codec.decompress_own(&u_bytes, u_shape));
    let us = Matrix::from_fn(mrows, k, |r, c| u_recon.get(r, c) * sigma[c]);
    let approx = us.matmul(&vk.transpose());
    BlockFit {
        rep,
        approx: approx.into_vec(),
        k,
    }
}

/// Which decomposition a partitioned fit uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionedMethod {
    /// Blocked PCA.
    Pca,
    /// Blocked truncated SVD.
    Svd,
}

/// Partitioned preconditioning: splits the matrix view into `blocks` row
/// blocks, fits them in parallel, and concatenates the representations.
pub fn partitioned_precondition(
    field: &Field,
    method: PartitionedMethod,
    blocks: usize,
    variance_fraction: f64,
    codec: &LossyCodec,
) -> DimRedOutput {
    let (m, n) = field.matrix_dims();
    let ranges = row_blocks(m, blocks);

    let fits: Vec<BlockFit> = WorkerPool::auto().run(ranges.clone(), |_, (r0, r1)| {
        let rows = &field.data[r0 * n..r1 * n];
        match method {
            PartitionedMethod::Pca => fit_pca_block(rows, r1 - r0, n, variance_fraction, codec),
            PartitionedMethod::Svd => fit_svd_block(rows, r1 - r0, n, variance_fraction, codec),
        }
    });

    // Representation: method tag, n, block count, then length-prefixed
    // per-block representations.
    let mut rep = Vec::new();
    rep.push(match method {
        PartitionedMethod::Pca => 0u8,
        PartitionedMethod::Svd => 1u8,
    });
    put_u32(&mut rep, n);
    put_u32(&mut rep, fits.len());
    for f in &fits {
        put_u32(&mut rep, f.rep.len());
        rep.extend_from_slice(&f.rep);
    }

    let mut approx = Vec::with_capacity(field.len());
    for f in &fits {
        approx.extend_from_slice(&f.approx);
    }
    let delta: Vec<f64> = field.data.iter().zip(&approx).map(|(a, b)| a - b).collect();
    let k_max = fits.iter().map(|f| f.k).max().unwrap_or(0);
    DimRedOutput {
        rep_bytes: rep,
        delta,
        k: k_max,
    }
}

/// Rebuilds the base reconstruction from a partitioned representation and
/// adds the delta.
pub fn partitioned_reconstruct(
    rep_bytes: &[u8],
    delta: &[f64],
    codec: &LossyCodec,
) -> DecodeResult<Vec<f64>> {
    let method = *rep_bytes.first().ok_or(DecodeError::Truncated {
        what: "partitioned method tag",
    })?;
    if method > 1 {
        return Err(DecodeError::UnknownTag {
            what: "partitioned method",
            tag: method,
        });
    }
    let mut pos = 1usize;
    let n = get_u32(rep_bytes, &mut pos)?;
    let nblocks = get_u32(rep_bytes, &mut pos)?;
    let mut approx = Vec::with_capacity(delta.len());
    for _ in 0..nblocks {
        let blen = get_u32(rep_bytes, &mut pos)?;
        let block = rep_bytes
            .get(pos..pos.saturating_add(blen))
            .ok_or(DecodeError::Truncated {
                what: "partitioned block",
            })?;
        pos += blen;
        let mut bp = 0usize;
        let mrows = get_u32(block, &mut bp)?;
        let k = get_u32(block, &mut bp)?;
        let nk = n.checked_mul(k).ok_or(DecodeError::Corrupt {
            what: "partitioned basis size overflow",
        })?;
        if method == 0 {
            let means = get_f64s(block, &mut bp, n)?;
            let basis = Matrix::from_vec(n, k, get_f64s(block, &mut bp, nk)?);
            let slen = get_u32(block, &mut bp)?;
            let scores_bytes =
                block
                    .get(bp..bp.saturating_add(slen))
                    .ok_or(DecodeError::Truncated {
                        what: "partitioned score stream",
                    })?;
            let scores = Matrix::from_vec(
                mrows,
                k,
                codec.decompress(scores_bytes, Shape::d2(k, mrows))?,
            );
            let a = scores.matmul(&basis.transpose());
            approx.extend(
                a.as_slice()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v + means[i % n]),
            );
        } else {
            let sigma = get_f64s(block, &mut bp, k)?;
            let vk = Matrix::from_vec(n, k, get_f64s(block, &mut bp, nk)?);
            let ulen = get_u32(block, &mut bp)?;
            let u_bytes = block
                .get(bp..bp.saturating_add(ulen))
                .ok_or(DecodeError::Truncated {
                    what: "partitioned u stream",
                })?;
            let u = Matrix::from_vec(mrows, k, codec.decompress(u_bytes, Shape::d2(k, mrows))?);
            let us = Matrix::from_fn(mrows, k, |r, c| u.get(r, c) * sigma[c]);
            approx.extend_from_slice(us.matmul(&vk.transpose()).as_slice());
        }
    }
    Ok(approx.iter().zip(delta).map(|(b, d)| b + d).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_field() -> Field {
        let (m, n) = (64, 24);
        let shape = Shape::d2(n, m);
        let mut data = Vec::with_capacity(m * n);
        for r in 0..m {
            let s = 1.0 + 0.4 * (r as f64 * 0.15).sin();
            for c in 0..n {
                data.push(s * (c as f64 * 0.35).cos() * 8.0 + 0.02 * ((r * c) as f64).sin());
            }
        }
        Field::new("part", data, shape)
    }

    #[test]
    fn partitioned_pca_roundtrips() {
        let f = test_field();
        let codec = LossyCodec::SzRel(1e-6);
        for blocks in [1, 2, 4, 7] {
            let out = partitioned_precondition(&f, PartitionedMethod::Pca, blocks, 0.95, &codec);
            let rec = partitioned_reconstruct(&out.rep_bytes, &out.delta, &codec).expect("decode");
            for (a, b) in f.data.iter().zip(&rec) {
                assert!((a - b).abs() < 1e-9, "blocks {blocks}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn partitioned_svd_roundtrips() {
        let f = test_field();
        let codec = LossyCodec::ZfpPrecision(44);
        for blocks in [1, 3, 8] {
            let out = partitioned_precondition(&f, PartitionedMethod::Svd, blocks, 0.95, &codec);
            let rec = partitioned_reconstruct(&out.rep_bytes, &out.delta, &codec).expect("decode");
            for (a, b) in f.data.iter().zip(&rec) {
                assert!((a - b).abs() < 1e-8, "blocks {blocks}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn single_block_matches_monolithic_structure() {
        // blocks = 1 is the plain method modulo header framing.
        let f = test_field();
        let codec = LossyCodec::SzRel(1e-6);
        let part = partitioned_precondition(&f, PartitionedMethod::Pca, 1, 0.95, &codec);
        let mono = crate::dimred::pca_precondition(&f, 0.95, &codec);
        assert_eq!(part.k, mono.k);
        // Deltas describe the same residual structure.
        let e_part: f64 = part.delta.iter().map(|v| v * v).sum();
        let e_mono: f64 = mono.delta.iter().map(|v| v * v).sum();
        assert!((e_part - e_mono).abs() <= 1e-6 * (e_mono + 1e-12));
    }

    #[test]
    fn more_blocks_keep_delta_quality() {
        // Each block fits its own basis, so per-block residuals cannot be
        // much worse than the global fit on correlated data.
        let f = test_field();
        let codec = LossyCodec::SzRel(1e-6);
        let one = partitioned_precondition(&f, PartitionedMethod::Pca, 1, 0.95, &codec);
        let many = partitioned_precondition(&f, PartitionedMethod::Pca, 8, 0.95, &codec);
        let energy = |d: &[f64]| d.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(&many.delta) <= 4.0 * energy(&one.delta) + 1e-9);
    }

    #[test]
    fn block_count_is_clamped() {
        let f = test_field();
        let codec = LossyCodec::SzRel(1e-5);
        // More blocks than rows must not panic.
        let out = partitioned_precondition(&f, PartitionedMethod::Pca, 10_000, 0.95, &codec);
        let rec = partitioned_reconstruct(&out.rep_bytes, &out.delta, &codec).expect("decode");
        assert_eq!(rec.len(), f.len());
    }
}
