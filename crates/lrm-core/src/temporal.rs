//! Temporal preconditioning — an extension beyond the paper.
//!
//! The paper's reduced models are *spatial* (a plane, a basis, a sparse
//! transform). Simulation campaigns also have a time axis: consecutive
//! snapshots differ slowly, so the previous snapshot's *reconstruction*
//! is itself a latent reduced model for the next one. This module
//! compresses a snapshot series that way: the first snapshot directly,
//! every later one as a delta against its predecessor's reconstruction
//! (chaining against reconstructions, not originals, prevents error
//! drift — the same discipline the spatial pipeline applies).

use crate::codec::LossyCodec;
use lrm_compress::{DecodeError, DecodeResult, Shape};
use lrm_datasets::Field;
use lrm_io::Artifact;

/// A compressed snapshot series.
#[derive(Debug, Clone)]
pub struct TemporalSeries {
    /// Serialized container: one section per snapshot.
    pub bytes: Vec<u8>,
    /// Raw input bytes across the series.
    pub raw_bytes: usize,
    /// Per-snapshot compressed sizes.
    pub snapshot_bytes: Vec<usize>,
}

impl TemporalSeries {
    /// Series compression ratio.
    pub fn ratio(&self) -> f64 {
        let total: usize = self.snapshot_bytes.iter().sum();
        self.raw_bytes as f64 / total.max(1) as f64
    }
}

/// Compresses `fields` (a time-ordered snapshot series over one grid)
/// with temporal-delta preconditioning.
///
/// # Panics
/// Panics if the series is empty or shapes differ between snapshots.
pub fn compress_series(
    fields: &[Field],
    base_codec: &LossyCodec,
    delta_codec: &LossyCodec,
) -> TemporalSeries {
    assert!(!fields.is_empty(), "temporal: empty series");
    let shape = fields[0].shape;
    for f in fields {
        assert_eq!(f.shape, shape, "temporal: inconsistent shapes");
    }

    let mut artifact = Artifact::new();
    // Header section: shape + codecs.
    let mut meta = Vec::new();
    for d in shape.dims {
        meta.extend_from_slice(&(d as u32).to_le_bytes());
    }
    meta.extend_from_slice(&base_codec.to_bytes());
    meta.extend_from_slice(&delta_codec.to_bytes());
    meta.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    artifact.push("meta", meta);

    let mut prev_recon: Option<Vec<f64>> = None;
    let mut snapshot_bytes = Vec::with_capacity(fields.len());
    for (i, f) in fields.iter().enumerate() {
        let bytes = match &prev_recon {
            None => base_codec.compress(&f.data, shape),
            Some(prev) => {
                let delta: Vec<f64> = f.data.iter().zip(prev).map(|(a, b)| a - b).collect();
                delta_codec.compress(&delta, shape)
            }
        };
        snapshot_bytes.push(bytes.len());
        // Track the decoder's view.
        let recon = match &prev_recon {
            None => base_codec.decompress_own(&bytes, shape),
            Some(prev) => {
                let d = delta_codec.decompress_own(&bytes, shape);
                d.iter().zip(prev).map(|(d, p)| d + p).collect()
            }
        };
        artifact.push(format!("t{i}"), bytes);
        prev_recon = Some(recon);
    }

    TemporalSeries {
        bytes: artifact.to_bytes(),
        raw_bytes: fields.iter().map(|f| f.nbytes()).sum(),
        snapshot_bytes,
    }
}

/// Decompresses a series produced by [`compress_series`]. Returns the
/// snapshots in time order plus their shape. Corrupt input is reported
/// as a [`DecodeError`]; this never panics.
pub fn reconstruct_series(bytes: &[u8]) -> DecodeResult<(Vec<Vec<f64>>, Shape)> {
    let artifact = Artifact::from_bytes(bytes)?;
    let meta = artifact.get("meta").ok_or(DecodeError::Corrupt {
        what: "temporal missing meta section",
    })?;
    if meta.len() < 34 {
        return Err(DecodeError::Truncated {
            what: "temporal meta",
        });
    }
    let dim = |i: usize| -> usize {
        u32::from_le_bytes([
            meta[4 * i],
            meta[4 * i + 1],
            meta[4 * i + 2],
            meta[4 * i + 3],
        ]) as usize
    };
    let dims = [dim(0), dim(1), dim(2)];
    dims[0]
        .checked_mul(dims[1].max(1))
        .and_then(|p| p.checked_mul(dims[2].max(1)))
        .ok_or(DecodeError::Corrupt {
            what: "temporal shape overflow",
        })?;
    let shape = Shape { dims };
    let base_codec = LossyCodec::from_bytes(&meta[12..21])?;
    let delta_codec = LossyCodec::from_bytes(&meta[21..30])?;
    let count = u32::from_le_bytes([meta[30], meta[31], meta[32], meta[33]]) as usize;
    // One section per snapshot plus the meta section bounds the count.
    if count > artifact.len() {
        return Err(DecodeError::Corrupt {
            what: "temporal snapshot count",
        });
    }

    let mut out: Vec<Vec<f64>> = Vec::with_capacity(count);
    for i in 0..count {
        let section = artifact.get(&format!("t{i}")).ok_or(DecodeError::Corrupt {
            what: "temporal missing snapshot section",
        })?;
        let snap = if i == 0 {
            base_codec.decompress(section, shape)?
        } else {
            let d = delta_codec.decompress(section, shape)?;
            d.iter().zip(&out[i - 1]).map(|(d, p)| d + p).collect()
        };
        out.push(snap);
    }
    Ok((out, shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_stats::nrmse;

    fn drifting_series(count: usize) -> Vec<Field> {
        let shape = Shape::d2(24, 24);
        (0..count)
            .map(|t| {
                let data: Vec<f64> = (0..shape.len())
                    .map(|i| {
                        let x = (i % 24) as f64;
                        let y = (i / 24) as f64;
                        100.0
                            + 10.0 * (x * 0.3).sin() * (y * 0.2).cos()
                            + 0.2 * t as f64 * (x * 0.1).cos()
                    })
                    .collect();
                Field::new(format!("t{t}"), data, shape)
            })
            .collect()
    }

    #[test]
    fn series_roundtrips_within_bounds() {
        let fields = drifting_series(6);
        let s = compress_series(&fields, &LossyCodec::SzRel(1e-5), &LossyCodec::SzRel(1e-3));
        let (rec, shape) = reconstruct_series(&s.bytes).expect("decode");
        assert_eq!(shape, fields[0].shape);
        assert_eq!(rec.len(), 6);
        for (f, r) in fields.iter().zip(&rec) {
            assert!(nrmse(&f.data, r) < 0.01, "snapshot {}", f.name);
        }
    }

    #[test]
    fn temporal_deltas_shrink_later_snapshots() {
        let fields = drifting_series(8);
        let s = compress_series(&fields, &LossyCodec::SzRel(1e-5), &LossyCodec::SzRel(1e-3));
        let first = s.snapshot_bytes[0];
        let later_avg: f64 = s.snapshot_bytes[1..].iter().map(|&b| b as f64).sum::<f64>()
            / (s.snapshot_bytes.len() - 1) as f64;
        assert!(
            later_avg < first as f64,
            "later {later_avg} vs first {first}"
        );
        assert!(s.ratio() > 1.0);
    }

    #[test]
    fn errors_do_not_accumulate_down_the_chain() {
        // Chaining against reconstructions keeps every snapshot within its
        // own bound; verify the last one is no worse than the first by an
        // order of magnitude.
        let fields = drifting_series(10);
        let s = compress_series(&fields, &LossyCodec::SzRel(1e-5), &LossyCodec::SzRel(1e-4));
        let (rec, _) = reconstruct_series(&s.bytes).expect("decode");
        let e_first = nrmse(&fields[0].data, &rec[0]);
        let e_last = nrmse(&fields[9].data, &rec[9]);
        assert!(e_last < 10.0 * e_first + 1e-6, "{e_first} -> {e_last}");
    }

    #[test]
    fn single_snapshot_series_works() {
        let fields = drifting_series(1);
        let s = compress_series(&fields, &LossyCodec::SzRel(1e-5), &LossyCodec::SzRel(1e-3));
        let (rec, _) = reconstruct_series(&s.bytes).expect("decode");
        assert_eq!(rec.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_rejected() {
        compress_series(&[], &LossyCodec::SzRel(1e-5), &LossyCodec::SzRel(1e-3));
    }

    #[test]
    #[should_panic(expected = "inconsistent shapes")]
    fn mismatched_shapes_rejected() {
        let a = Field::new("a", vec![0.0; 4], Shape::d2(2, 2));
        let b = Field::new("b", vec![0.0; 6], Shape::d2(3, 2));
        compress_series(&[a, b], &LossyCodec::SzRel(1e-5), &LossyCodec::SzRel(1e-3));
    }
}
