//! Chunk-parallel pipeline engine with a builder-style API.
//!
//! The single-shot pipeline of [`crate::pipeline`] preconditions a whole
//! field in one piece. At production scale (the paper runs Heat3d across
//! 512 Titan ranks) a snapshot is far too large for that: this engine
//! decomposes the field into **z-slabs** via `lrm_parallel::domain`, runs
//! the precondition + dual-bound compression independently per slab on a
//! work-stealing worker pool, and merges the per-slab outputs into one
//! multi-chunk [`ChunkedArtifact`] container. Reconstruction is
//! symmetric: chunks decode in parallel and scatter back into the global
//! array.
//!
//! # Error-bound semantics
//!
//! Chunking preserves the compression contract. Every value belongs to
//! exactly one slab and is compressed under the same configured bound it
//! would see in a single-chunk run, so per-slab bounds imply the global
//! bound (SZ's block-relative bound keys off scan blocks *within* a
//! slab, which only tightens it; absolute and fixed-precision bounds are
//! pointwise to begin with).
//!
//! # Determinism
//!
//! * The worker pool returns results in submission order, so the output
//!   bytes are **identical for any thread count**.
//! * `chunks(1)` (or a field below [`PipelineBuilder::min_chunk_len`],
//!   or a non-3-D field) takes the serial path and emits exactly the
//!   version-0 single-chunk artifact stream — byte-for-byte what the
//!   deprecated free functions produce.
//!
//! ```
//! use lrm_core::{LossyCodec, Pipeline, ReducedModelKind};
//!
//! let pipeline = Pipeline::builder()
//!     .model(ReducedModelKind::Pca)
//!     .codec(LossyCodec::SzRel(1e-5))
//!     .delta_codec(LossyCodec::SzRel(1e-3))
//!     .chunks(4)
//!     .threads(2)
//!     .build();
//! # let field = lrm_datasets::Field::new(
//! #     "demo",
//! #     (0..16 * 16 * 16).map(|i| (i as f64 * 0.01).sin()).collect(),
//! #     lrm_compress::Shape::d3(16, 16, 16),
//! # );
//! let artifact = pipeline.compress(&field);
//! let (restored, shape) = pipeline.reconstruct(&artifact.bytes).expect("valid artifact");
//! assert_eq!(shape, field.shape);
//! ```

use crate::codec::LossyCodec;
use crate::pipeline::{
    model_tag, precondition_impl, reconstruct_impl, CompressionReport, PipelineConfig,
    PreconditionedArtifact, ReducedModelKind,
};
use lrm_compress::{DecodeError, DecodeResult, Shape};
use lrm_datasets::Field;
use lrm_io::{ChunkEntry, ChunkedArtifact};
use lrm_parallel::{Decomposition, WorkerPool};

/// Fields smaller than this (in values) always compress single-chunk:
/// slab overhead (per-chunk model fit + container directory) only pays
/// off once there is real work to split.
pub const DEFAULT_MIN_CHUNK_LEN: usize = 4096;

/// Builder for [`Pipeline`]. Obtain via [`Pipeline::builder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineBuilder {
    cfg: PipelineConfig,
    threads: usize,
    chunks: usize,
    min_chunk_len: usize,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::from_config(PipelineConfig::sz(ReducedModelKind::Direct))
    }
}

impl PipelineBuilder {
    /// Seeds the builder from an existing [`PipelineConfig`] (serial
    /// defaults: one chunk, one thread).
    pub fn from_config(cfg: PipelineConfig) -> Self {
        Self {
            cfg,
            threads: 1,
            chunks: 1,
            min_chunk_len: DEFAULT_MIN_CHUNK_LEN,
        }
    }

    /// The reduced model to identify (default: `Direct`).
    pub fn model(mut self, model: ReducedModelKind) -> Self {
        self.cfg.model = model;
        self
    }

    /// Codec/bound for original data and reduced representations.
    pub fn codec(mut self, codec: LossyCodec) -> Self {
        self.cfg.orig = codec;
        self
    }

    /// Codec/bound for deltas (looser, per the paper's Section V-B).
    pub fn delta_codec(mut self, codec: LossyCodec) -> Self {
        self.cfg.delta = codec;
        self
    }

    /// Cumulative-variance rule for PCA/SVD component selection
    /// (default 0.95, as in the paper).
    pub fn variance_fraction(mut self, f: f64) -> Self {
        self.cfg.variance_fraction = f;
        self
    }

    /// Wavelet threshold as a fraction of the max coefficient
    /// (default 0.05, as in the paper).
    pub fn theta_fraction(mut self, f: f64) -> Self {
        self.cfg.theta_fraction = f;
        self
    }

    /// Compress deltas in flat 1-D scan order (see
    /// [`PipelineConfig::scan_1d`]).
    pub fn scan_1d(mut self, on: bool) -> Self {
        self.cfg.scan_1d = on;
        self
    }

    /// Worker threads for chunk compression/reconstruction; `0` means
    /// one per available core (default: 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of z-slab chunks to decompose into (default: 1 = serial).
    /// Clamped at compress time to the field's z extent.
    pub fn chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }

    /// Minimum field size (values) for chunking to engage; smaller
    /// fields compress single-chunk (default
    /// [`DEFAULT_MIN_CHUNK_LEN`]).
    pub fn min_chunk_len(mut self, len: usize) -> Self {
        self.min_chunk_len = len;
        self
    }

    /// Finalizes into a reusable [`Pipeline`] handle.
    pub fn build(self) -> Pipeline {
        Pipeline {
            cfg: self.cfg,
            threads: self.threads,
            chunks: self.chunks,
            min_chunk_len: self.min_chunk_len,
        }
    }
}

/// Per-chunk size accounting from a chunked compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkReport {
    /// First global z-plane of the chunk.
    pub z_offset: usize,
    /// Chunk dims `[nx, ny, nz]`.
    pub dims: [usize; 3],
    /// The chunk's own size report.
    pub report: CompressionReport,
}

/// Result of [`Pipeline::compress_detailed`]: the container bytes, the
/// aggregate report, and the per-chunk breakdown.
#[derive(Debug, Clone)]
pub struct ChunkedCompression {
    /// Serialized artifact (version-0 stream when a single chunk was
    /// used, version-1 `ChunkedArtifact` container otherwise).
    pub bytes: Vec<u8>,
    /// Aggregate size accounting across chunks.
    pub report: CompressionReport,
    /// One entry per chunk, in z order (one entry for serial runs).
    pub chunks: Vec<ChunkReport>,
}

/// A reusable compression pipeline handle: model + dual-bound codecs +
/// chunk/thread policy. Build with [`Pipeline::builder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    cfg: PipelineConfig,
    threads: usize,
    chunks: usize,
    min_chunk_len: usize,
}

impl Pipeline {
    /// Starts a builder with serial defaults (`Direct` model, paper SZ
    /// bounds, one chunk, one thread).
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// A serial pipeline over an existing [`PipelineConfig`] — the
    /// one-line migration path from the deprecated free functions.
    pub fn from_config(cfg: PipelineConfig) -> Pipeline {
        PipelineBuilder::from_config(cfg).build()
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Configured worker-thread count (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured chunk count (before per-field clamping).
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    fn pool(&self) -> WorkerPool {
        if self.threads == 0 {
            WorkerPool::auto()
        } else {
            WorkerPool::new(self.threads)
        }
    }

    /// How many chunks a field of this shape actually decomposes into:
    /// the configured count clamped to the z extent, with small and
    /// non-3-D fields falling back to one chunk.
    pub fn effective_chunks(&self, shape: Shape) -> usize {
        let [_, _, nz] = shape.dims;
        if shape.len() < self.min_chunk_len || nz < 2 {
            return 1;
        }
        self.chunks.min(nz)
    }

    /// Compresses `field`, decomposing into z-slabs when chunking is
    /// engaged (Fig. 5's reduction phase, chunk-parallel).
    ///
    /// # Panics
    /// Panics if the model is [`ReducedModelKind::DuoModel`] — that model
    /// needs the coarse companion run; use
    /// [`Pipeline::compress_with_aux`].
    pub fn compress(&self, field: &Field) -> PreconditionedArtifact {
        let detailed = self.compress_detailed(field);
        PreconditionedArtifact {
            bytes: detailed.bytes,
            report: detailed.report,
        }
    }

    /// Like [`Pipeline::compress`], supplying the auxiliary coarse field
    /// DuoModel requires. DuoModel couples every slab to the coarse
    /// companion's geometry, so it always runs serially regardless of
    /// the chunk setting.
    pub fn compress_with_aux(&self, field: &Field, coarse: &Field) -> PreconditionedArtifact {
        precondition_impl(field, Some(coarse), &self.cfg)
    }

    /// Compresses with per-chunk reporting.
    ///
    /// # Panics
    /// See [`Pipeline::compress`].
    pub fn compress_detailed(&self, field: &Field) -> ChunkedCompression {
        let chunks = if self.cfg.model == ReducedModelKind::DuoModel {
            1
        } else {
            self.effective_chunks(field.shape)
        };
        if chunks <= 1 {
            // Serial fallback: byte-identical to the original
            // single-shot pipeline (version-0 stream).
            let art = precondition_impl(field, None, &self.cfg);
            return ChunkedCompression {
                report: art.report,
                chunks: vec![ChunkReport {
                    z_offset: 0,
                    dims: field.shape.dims,
                    report: art.report,
                }],
                bytes: art.bytes,
            };
        }

        let [nx, ny, nz] = field.shape.dims;
        let decomp = Decomposition::new([nx, ny, nz], [1, 1, chunks]);
        let plane = nx * ny;
        // A z-slab is a contiguous run of planes, so extraction is a
        // single copy per slab.
        let slabs: Vec<(usize, Field)> = (0..chunks)
            .map(|r| {
                let sd = decomp.subdomain(r);
                let data = field.data[sd.z.0 * plane..sd.z.1 * plane].to_vec();
                let shape = Shape::d3(nx, ny, sd.z.1 - sd.z.0);
                (
                    sd.z.0,
                    Field::new(format!("{}[z{}]", field.name, sd.z.0), data, shape),
                )
            })
            .collect();

        let cfg = &self.cfg;
        let parts: Vec<(usize, PreconditionedArtifact)> =
            self.pool().run(slabs, |_, (z0, slab)| {
                (z0, precondition_impl(&slab, None, cfg))
            });

        let tag = model_tag(self.cfg.model).0;
        let mut container = ChunkedArtifact::new([nx as u32, ny as u32, nz as u32]);
        let mut reports = Vec::with_capacity(parts.len());
        let mut agg = CompressionReport {
            raw_bytes: field.nbytes(),
            rep_bytes: 0,
            delta_bytes: 0,
            k: 0,
        };
        for (z0, art) in parts {
            let slab_nz = decomp.subdomain(reports.len()).dims()[2];
            agg.rep_bytes += art.report.rep_bytes;
            agg.delta_bytes += art.report.delta_bytes;
            agg.k = agg.k.max(art.report.k);
            reports.push(ChunkReport {
                z_offset: z0,
                dims: [nx, ny, slab_nz],
                report: art.report,
            });
            container.push(
                ChunkEntry {
                    z_offset: z0 as u32,
                    dims: [nx as u32, ny as u32, slab_nz as u32],
                    model_tag: tag,
                },
                art.bytes,
            );
        }

        ChunkedCompression {
            bytes: container.to_bytes(),
            report: agg,
            chunks: reports,
        }
    }

    /// Reconstructs a field from artifact bytes — either a version-1
    /// chunked container (chunks decode in parallel on this pipeline's
    /// pool) or a version-0 single-chunk stream. Returns the data and
    /// its shape.
    ///
    /// Corrupt or truncated input is reported as a [`DecodeError`];
    /// this never panics on bad bytes.
    pub fn reconstruct(&self, bytes: &[u8]) -> DecodeResult<(Vec<f64>, Shape)> {
        let container = ChunkedArtifact::from_bytes(bytes)?;
        if container.global_dims == [0, 0, 0] {
            // Version-0 wrap: the single payload is a complete artifact.
            let (_, payload) = container.chunks().next().ok_or(DecodeError::Corrupt {
                what: "empty chunked container",
            })?;
            return reconstruct_impl(payload);
        }

        let [nx, ny, nz] = container.global_dims.map(|d| d as usize);
        nx.checked_mul(ny)
            .and_then(|p| p.checked_mul(nz))
            .ok_or(DecodeError::Corrupt {
                what: "chunked global dims overflow",
            })?;
        let shape = Shape::d3(nx, ny, nz);
        let plane = nx * ny;
        let parts: Vec<(usize, Vec<u8>)> = container
            .chunks()
            .map(|(e, p)| (e.z_offset as usize, p.to_vec()))
            .collect();
        let decoded: Vec<(usize, DecodeResult<Vec<f64>>)> =
            self.pool().run(parts, |_, (z0, payload)| {
                (z0, reconstruct_impl(&payload).map(|(data, _)| data))
            });

        let mut out = vec![0.0f64; shape.len()];
        for (z0, data) in decoded {
            let data = data?;
            let start = z0.checked_mul(plane).ok_or(DecodeError::Corrupt {
                what: "chunk offset overflow",
            })?;
            let slot = out.get_mut(start..start.saturating_add(data.len())).ok_or(
                DecodeError::Corrupt {
                    what: "chunk exceeds global extent",
                },
            )?;
            slot.copy_from_slice(&data);
        }
        Ok((out, shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(n: usize) -> Field {
        let shape = Shape::d3(n, n, n);
        let data = (0..shape.len())
            .map(|i| 10.0 + ((i % 97) as f64 * 0.13).sin() + (i as f64 * 0.001).cos())
            .collect();
        Field::new("engine-test", data, shape)
    }

    #[test]
    fn builder_defaults_are_serial() {
        let p = Pipeline::builder().build();
        assert_eq!(p.chunks(), 1);
        assert_eq!(p.threads(), 1);
        assert_eq!(p.config().model, ReducedModelKind::Direct);
    }

    #[test]
    fn single_chunk_matches_legacy_bytes_exactly() {
        let f = smooth_field(12);
        let cfg = PipelineConfig::sz(ReducedModelKind::OneBase);
        let legacy = precondition_impl(&f, None, &cfg);
        let built = PipelineBuilder::from_config(cfg).build().compress(&f);
        assert_eq!(legacy.bytes, built.bytes);
        assert_eq!(legacy.report, built.report);
    }

    #[test]
    fn chunked_bytes_are_thread_count_invariant() {
        let f = smooth_field(16);
        let mut streams = Vec::new();
        for threads in [1, 2, 4] {
            let p = Pipeline::builder()
                .model(ReducedModelKind::Pca)
                .chunks(4)
                .threads(threads)
                .min_chunk_len(0)
                .build();
            streams.push(p.compress(&f).bytes);
        }
        assert_eq!(streams[0], streams[1]);
        assert_eq!(streams[0], streams[2]);
    }

    #[test]
    fn chunked_roundtrip_stays_in_bounds() {
        let f = smooth_field(16);
        let p = Pipeline::builder()
            .model(ReducedModelKind::OneBase)
            .chunks(8)
            .threads(0)
            .min_chunk_len(0)
            .build();
        let art = p.compress(&f);
        let (rec, shape) = p.reconstruct(&art.bytes).expect("decode");
        assert_eq!(shape, f.shape);
        let max = f.data.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() <= 1e-2 * max, "{a} vs {b}");
        }
    }

    #[test]
    fn small_fields_fall_back_to_single_chunk() {
        let f = smooth_field(8); // 512 values < DEFAULT_MIN_CHUNK_LEN
        let p = Pipeline::builder()
            .model(ReducedModelKind::Pca)
            .chunks(4)
            .build();
        assert_eq!(p.effective_chunks(f.shape), 1);
        let detailed = p.compress_detailed(&f);
        assert_eq!(detailed.chunks.len(), 1);
        // Serial fallback emits a version-0 stream.
        assert_eq!(&detailed.bytes[..4], b"LRM1");
    }

    #[test]
    fn chunk_count_is_clamped_to_z_extent() {
        let p = Pipeline::builder().chunks(64).min_chunk_len(0).build();
        assert_eq!(p.effective_chunks(Shape::d3(16, 16, 16)), 16);
        // 1-D and 2-D fields never chunk (nz == 1).
        assert_eq!(p.effective_chunks(Shape::d1(100_000)), 1);
        assert_eq!(p.effective_chunks(Shape::d2(512, 512)), 1);
    }

    #[test]
    fn per_chunk_reports_sum_to_aggregate() {
        let f = smooth_field(16);
        let p = Pipeline::builder()
            .model(ReducedModelKind::MultiBase(2))
            .chunks(4)
            .threads(2)
            .min_chunk_len(0)
            .build();
        let d = p.compress_detailed(&f);
        assert_eq!(d.chunks.len(), 4);
        let rep: usize = d.chunks.iter().map(|c| c.report.rep_bytes).sum();
        let delta: usize = d.chunks.iter().map(|c| c.report.delta_bytes).sum();
        assert_eq!(rep, d.report.rep_bytes);
        assert_eq!(delta, d.report.delta_bytes);
        assert_eq!(d.report.raw_bytes, f.nbytes());
        // z offsets tile the field.
        let offsets: Vec<usize> = d.chunks.iter().map(|c| c.z_offset).collect();
        assert_eq!(offsets, vec![0, 4, 8, 12]);
    }

    #[test]
    fn reconstruct_accepts_version0_streams() {
        let f = smooth_field(12);
        let cfg = PipelineConfig::sz(ReducedModelKind::Svd);
        let v0 = precondition_impl(&f, None, &cfg);
        let p = Pipeline::builder().build();
        let (rec, shape) = p.reconstruct(&v0.bytes).expect("decode");
        assert_eq!(shape, f.shape);
        assert_eq!(rec.len(), f.len());
    }

    #[test]
    fn duo_model_always_runs_serially() {
        let f = smooth_field(16);
        let coarse = smooth_field(8);
        let p = Pipeline::builder()
            .model(ReducedModelKind::DuoModel)
            .chunks(8)
            .min_chunk_len(0)
            .build();
        let art = p.compress_with_aux(&f, &coarse);
        assert_eq!(&art.bytes[..4], b"LRM1");
        let (rec, _) = p.reconstruct(&art.bytes).expect("decode");
        assert_eq!(rec.len(), f.len());
    }
}
