//! Dimension-reduction reduced models (Section V): PCA, SVD, Wavelet.
//!
//! The field is viewed as an `m × n` matrix (higher dimensions flattened
//! into rows, x as columns — the paper's "linear combinations of the
//! original data in columns"). Each technique produces a *reduced
//! representation* and the delta of the original against the
//! representation's reconstruction:
//!
//! * **PCA** — scores on the top-k principal components (k chosen by the
//!   95 % cumulative-variance rule) plus the eigenvectors and column
//!   means. The scores (the bulk) are lossy-compressed; the small basis
//!   is stored raw.
//! * **SVD** — top-k singular triplets; `U_k` (the bulk) is
//!   lossy-compressed, `σ` and `V_k` stored raw.
//! * **Wavelet** — thresholded 2-D Haar coefficients stored as a sparse
//!   matrix (lossless; its sparsity *is* the reduction).

use crate::codec::LossyCodec;
use lrm_compress::{DecodeError, DecodeResult, Shape};
use lrm_datasets::Field;
use lrm_linalg::{svd, Matrix, Pca};
use lrm_wavelet::WaveletModel;

/// Output of a dimension-reduction preconditioner.
pub struct DimRedOutput {
    /// Serialized reduced representation (self-contained).
    pub rep_bytes: Vec<u8>,
    /// Delta of the original against the representation reconstruction.
    pub delta: Vec<f64>,
    /// Number of retained components (k), 0 for wavelet.
    pub k: usize,
}

fn field_matrix(field: &Field) -> (Matrix, usize, usize) {
    let (m, n) = field.matrix_dims();
    (Matrix::from_vec(m, n, field.data.clone()), m, n)
}

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn get_u32(b: &[u8], pos: &mut usize) -> DecodeResult<usize> {
    let s = b
        .get(*pos..pos.saturating_add(4))
        .ok_or(DecodeError::Truncated {
            what: "reduced-model header field",
        })?;
    *pos += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]) as usize)
}

fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_f64s(b: &[u8], pos: &mut usize, count: usize) -> DecodeResult<Vec<f64>> {
    let nbytes = count.checked_mul(8).ok_or(DecodeError::Corrupt {
        what: "reduced-model block size overflow",
    })?;
    let s = b
        .get(*pos..pos.saturating_add(nbytes))
        .ok_or(DecodeError::Truncated {
            what: "reduced-model f64 block",
        })?;
    *pos += nbytes;
    Ok(s.chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// PCA preconditioning of `field` with the paper's `variance_fraction`
/// rule (0.95) and the `orig_codec` bound on the score matrix.
pub fn pca_precondition(
    field: &Field,
    variance_fraction: f64,
    orig_codec: &LossyCodec,
) -> DimRedOutput {
    let (mat, m, n) = field_matrix(field);
    let pca = Pca::fit(&mat);
    let k = pca.components_for_variance(variance_fraction).max(1).min(n);
    let scores = pca.transform(&mat, k);

    // Representation layout: m, n, k, means (n), basis (n*k),
    // compressed-scores length + bytes.
    let scores_shape = Shape::d2(k, m); // row-major m rows of k scores
    let scores_bytes = orig_codec.compress(scores.as_slice(), scores_shape);
    let mut rep = Vec::new();
    put_u32(&mut rep, m);
    put_u32(&mut rep, n);
    put_u32(&mut rep, k);
    put_f64s(&mut rep, &pca.means);
    let basis = pca.components.take_cols(k);
    put_f64s(&mut rep, basis.as_slice());
    put_u32(&mut rep, scores_bytes.len());
    rep.extend_from_slice(&scores_bytes);

    // Reconstruct from the *lossy* scores, as the decoder will.
    let scores_recon =
        Matrix::from_vec(m, k, orig_codec.decompress_own(&scores_bytes, scores_shape));
    let approx = pca_rebuild(&scores_recon, &basis, &pca.means);
    let delta: Vec<f64> = field
        .data
        .iter()
        .zip(approx.as_slice())
        .map(|(a, b)| a - b)
        .collect();
    DimRedOutput {
        rep_bytes: rep,
        delta,
        k,
    }
}

fn pca_rebuild(scores: &Matrix, basis: &Matrix, means: &[f64]) -> Matrix {
    let approx = scores.matmul(&basis.transpose());
    Matrix::from_fn(approx.rows(), approx.cols(), |r, c| {
        approx.get(r, c) + means[c]
    })
}

/// Rebuilds the PCA base reconstruction from `rep_bytes` and adds `delta`.
pub fn pca_reconstruct(
    rep_bytes: &[u8],
    delta: &[f64],
    orig_codec: &LossyCodec,
) -> DecodeResult<Vec<f64>> {
    let mut pos = 0usize;
    let m = get_u32(rep_bytes, &mut pos)?;
    let n = get_u32(rep_bytes, &mut pos)?;
    let k = get_u32(rep_bytes, &mut pos)?;
    let nk = n.checked_mul(k).ok_or(DecodeError::Corrupt {
        what: "pca basis size overflow",
    })?;
    let means = get_f64s(rep_bytes, &mut pos, n)?;
    let basis = Matrix::from_vec(n, k, get_f64s(rep_bytes, &mut pos, nk)?);
    let slen = get_u32(rep_bytes, &mut pos)?;
    let scores_shape = Shape::d2(k, m);
    let scores_bytes =
        rep_bytes
            .get(pos..pos.saturating_add(slen))
            .ok_or(DecodeError::Truncated {
                what: "pca score stream",
            })?;
    let scores = Matrix::from_vec(m, k, orig_codec.decompress(scores_bytes, scores_shape)?);
    let approx = pca_rebuild(&scores, &basis, &means);
    Ok(approx
        .as_slice()
        .iter()
        .zip(delta)
        .map(|(b, d)| b + d)
        .collect())
}

/// SVD preconditioning: keep the top-k singular triplets by the 95 %
/// singular-value-sum rule; `U_k` is lossy-compressed.
pub fn svd_precondition(
    field: &Field,
    energy_fraction: f64,
    orig_codec: &LossyCodec,
) -> DimRedOutput {
    let (mat, m, n) = field_matrix(field);
    let dec = svd(&mat);
    let k = dec.rank_for_energy(energy_fraction).max(1).min(n.min(m));

    let uk = dec.u.take_cols(k);
    let vk = dec.v.take_cols(k);
    let sigma = &dec.sigma[..k];

    let u_shape = Shape::d2(k, m);
    let u_bytes = orig_codec.compress(uk.as_slice(), u_shape);

    let mut rep = Vec::new();
    put_u32(&mut rep, m);
    put_u32(&mut rep, n);
    put_u32(&mut rep, k);
    put_f64s(&mut rep, sigma);
    put_f64s(&mut rep, vk.as_slice());
    put_u32(&mut rep, u_bytes.len());
    rep.extend_from_slice(&u_bytes);

    let u_recon = Matrix::from_vec(m, k, orig_codec.decompress_own(&u_bytes, u_shape));
    let approx = svd_rebuild(&u_recon, sigma, &vk);
    let delta: Vec<f64> = field
        .data
        .iter()
        .zip(approx.as_slice())
        .map(|(a, b)| a - b)
        .collect();
    DimRedOutput {
        rep_bytes: rep,
        delta,
        k,
    }
}

fn svd_rebuild(u: &Matrix, sigma: &[f64], v: &Matrix) -> Matrix {
    // U diag(σ) Vᵀ.
    let k = sigma.len();
    let us = Matrix::from_fn(u.rows(), k, |r, c| u.get(r, c) * sigma[c]);
    us.matmul(&v.transpose())
}

/// Inverse of [`svd_precondition`]'s representation, plus delta.
pub fn svd_reconstruct(
    rep_bytes: &[u8],
    delta: &[f64],
    orig_codec: &LossyCodec,
) -> DecodeResult<Vec<f64>> {
    let mut pos = 0usize;
    let m = get_u32(rep_bytes, &mut pos)?;
    let n = get_u32(rep_bytes, &mut pos)?;
    let k = get_u32(rep_bytes, &mut pos)?;
    let nk = n.checked_mul(k).ok_or(DecodeError::Corrupt {
        what: "svd basis size overflow",
    })?;
    let sigma = get_f64s(rep_bytes, &mut pos, k)?;
    let vk = Matrix::from_vec(n, k, get_f64s(rep_bytes, &mut pos, nk)?);
    let ulen = get_u32(rep_bytes, &mut pos)?;
    let u_bytes = rep_bytes
        .get(pos..pos.saturating_add(ulen))
        .ok_or(DecodeError::Truncated {
            what: "svd u stream",
        })?;
    let u = Matrix::from_vec(m, k, orig_codec.decompress(u_bytes, Shape::d2(k, m))?);
    let approx = svd_rebuild(&u, &sigma, &vk);
    Ok(approx
        .as_slice()
        .iter()
        .zip(delta)
        .map(|(b, d)| b + d)
        .collect())
}

/// Randomized-SVD preconditioning (extension): like
/// [`svd_precondition`] but the decomposition is the
/// Halko–Martinsson–Tropp sketch, replacing the `O(mn²)` Jacobi sweep
/// with `O(mn(k+p))`. The representation format is identical, so
/// [`svd_reconstruct`] decodes it.
pub fn svd_randomized_precondition(
    field: &Field,
    energy_fraction: f64,
    orig_codec: &LossyCodec,
) -> DimRedOutput {
    use lrm_linalg::{randomized_svd, RsvdConfig};
    let (mat, m, n) = field_matrix(field);
    // Probe enough of the spectrum to apply the 95% rule: the rule is
    // evaluated over the sketched leading singular values only, which
    // overestimates their share — acceptable for a fast path and noted
    // in the docs.
    let probe = RsvdConfig::rank(n.min(m).min(32));
    let dec = randomized_svd(&mat, &probe);
    let k = dec
        .rank_for_energy(energy_fraction)
        .max(1)
        .min(dec.sigma.len());

    let uk = dec.u.take_cols(k);
    let vk = dec.v.take_cols(k);
    let sigma = &dec.sigma[..k];

    let u_shape = Shape::d2(k, m);
    let u_bytes = orig_codec.compress(uk.as_slice(), u_shape);

    let mut rep = Vec::new();
    put_u32(&mut rep, m);
    put_u32(&mut rep, n);
    put_u32(&mut rep, k);
    put_f64s(&mut rep, sigma);
    put_f64s(&mut rep, vk.as_slice());
    put_u32(&mut rep, u_bytes.len());
    rep.extend_from_slice(&u_bytes);

    let u_recon = Matrix::from_vec(m, k, orig_codec.decompress_own(&u_bytes, u_shape));
    let approx = svd_rebuild(&u_recon, sigma, &vk);
    let delta: Vec<f64> = field
        .data
        .iter()
        .zip(approx.as_slice())
        .map(|(a, b)| a - b)
        .collect();
    DimRedOutput {
        rep_bytes: rep,
        delta,
        k,
    }
}

/// Wavelet preconditioning with threshold θ = `theta_fraction` × max
/// coefficient (paper: 0.05). The sparse representation is lossless.
pub fn wavelet_precondition(field: &Field, theta_fraction: f64) -> DimRedOutput {
    let (m, n) = field.matrix_dims();
    let model = WaveletModel::fit(&field.data, m, n, theta_fraction);
    let approx = model.reconstruct();
    let delta: Vec<f64> = field.data.iter().zip(&approx).map(|(a, b)| a - b).collect();
    let mut rep = Vec::new();
    put_u32(&mut rep, m);
    put_u32(&mut rep, n);
    let sb = model.coeffs.to_bytes();
    put_u32(&mut rep, sb.len());
    rep.extend_from_slice(&sb);
    DimRedOutput {
        rep_bytes: rep,
        delta,
        k: 0,
    }
}

/// Inverse of [`wavelet_precondition`]'s representation, plus delta.
pub fn wavelet_reconstruct(rep_bytes: &[u8], delta: &[f64]) -> DecodeResult<Vec<f64>> {
    let mut pos = 0usize;
    let m = get_u32(rep_bytes, &mut pos)?;
    let n = get_u32(rep_bytes, &mut pos)?;
    let slen = get_u32(rep_bytes, &mut pos)?;
    let sparse_bytes =
        rep_bytes
            .get(pos..pos.saturating_add(slen))
            .ok_or(DecodeError::Truncated {
                what: "wavelet sparse block",
            })?;
    let coeffs =
        lrm_wavelet::SparseMatrix::from_bytes(sparse_bytes).ok_or(DecodeError::Corrupt {
            what: "wavelet sparse block",
        })?;
    // The padded coefficient grid must cover the stored extents, or
    // cropping the inverse transform would assert.
    let (pr, pc) = coeffs.shape();
    if m > pr || n > pc {
        return Err(DecodeError::Corrupt {
            what: "wavelet extents exceed coefficient grid",
        });
    }
    // A valid grid pads each extent to the next power of two, so its area
    // is under 4x the field; anything larger is corrupt (and would make
    // the inverse transform allocate absurdly).
    if pr.saturating_mul(pc) > delta.len().saturating_mul(4).max(64) {
        return Err(DecodeError::Corrupt {
            what: "wavelet coefficient grid too large",
        });
    }
    let model = WaveletModel {
        coeffs,
        rows: m,
        cols: n,
    };
    let approx = model.reconstruct();
    Ok(approx.iter().zip(delta).map(|(b, d)| b + d).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column_correlated_field() -> Field {
        // Rows are scaled copies of one profile: a rank-1-ish matrix where
        // PCA/SVD shine.
        let (m, n) = (40, 24);
        let shape = Shape::d2(n, m);
        let mut data = Vec::with_capacity(m * n);
        for r in 0..m {
            let scale = 1.0 + 0.5 * (r as f64 * 0.1).sin();
            for c in 0..n {
                data.push(scale * (c as f64 * 0.3).cos() * 10.0 + 0.01 * ((r * c) as f64).sin());
            }
        }
        Field::new("corr", data, shape)
    }

    #[test]
    fn pca_roundtrip_exact_with_raw_delta() {
        let f = column_correlated_field();
        let codec = LossyCodec::SzRel(1e-6);
        let out = pca_precondition(&f, 0.95, &codec);
        let rec = pca_reconstruct(&out.rep_bytes, &out.delta, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn pca_selects_few_components_for_correlated_data() {
        let f = column_correlated_field();
        let out = pca_precondition(&f, 0.95, &LossyCodec::SzRel(1e-6));
        assert!(out.k <= 3, "k = {}", out.k);
    }

    #[test]
    fn pca_delta_magnitude_is_small_for_correlated_data() {
        let f = column_correlated_field();
        let out = pca_precondition(&f, 0.95, &LossyCodec::SzRel(1e-6));
        let max_delta = out.delta.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let max_orig = f.data.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max_delta < 0.2 * max_orig, "{max_delta} vs {max_orig}");
    }

    #[test]
    fn svd_roundtrip() {
        let f = column_correlated_field();
        let codec = LossyCodec::ZfpPrecision(40);
        let out = svd_precondition(&f, 0.95, &codec);
        let rec = svd_reconstruct(&out.rep_bytes, &out.delta, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn svd_k_is_small_for_low_rank_data() {
        let f = column_correlated_field();
        let out = svd_precondition(&f, 0.95, &LossyCodec::SzRel(1e-6));
        assert!(out.k <= 3, "k = {}", out.k);
    }

    #[test]
    fn randomized_svd_roundtrip_and_agreement() {
        let f = column_correlated_field();
        let codec = LossyCodec::SzRel(1e-6);
        let fast = svd_randomized_precondition(&f, 0.95, &codec);
        let rec = svd_reconstruct(&fast.rep_bytes, &fast.delta, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // On low-rank data the sketch chooses the same k as exact SVD.
        let exact = svd_precondition(&f, 0.95, &codec);
        assert_eq!(fast.k, exact.k);
    }

    #[test]
    fn wavelet_roundtrip() {
        let f = column_correlated_field();
        let out = wavelet_precondition(&f, 0.05);
        let rec = wavelet_reconstruct(&out.rep_bytes, &out.delta).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn wavelet_zero_threshold_gives_zero_delta() {
        let f = column_correlated_field();
        let out = wavelet_precondition(&f, 0.0);
        let max_delta = out.delta.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max_delta < 1e-10, "max delta {max_delta}");
    }

    #[test]
    fn rep_sizes_reflect_paper_ordering() {
        // Fig. 9: wavelet representations are much bigger than PCA/SVD
        // when the data are column-correlated but oscillatory — rank-1 for
        // PCA/SVD, yet full of above-threshold detail coefficients for the
        // Haar transform.
        let (m, n) = (64, 32);
        let shape = Shape::d2(n, m);
        let mut data = Vec::with_capacity(m * n);
        for r in 0..m {
            let scale = 1.0 + 0.5 * (r as f64 * 0.9).sin();
            for c in 0..n {
                data.push(scale * (c as f64 * 2.7).cos() * 10.0);
            }
        }
        let f = Field::new("osc", data, shape);
        let codec = LossyCodec::SzRel(1e-5);
        let p = pca_precondition(&f, 0.95, &codec);
        let s = svd_precondition(&f, 0.95, &codec);
        let w = wavelet_precondition(&f, 0.05);
        assert!(
            p.k <= 2 && s.k <= 2,
            "rank-1-ish data: k = {}, {}",
            p.k,
            s.k
        );
        assert!(w.rep_bytes.len() > p.rep_bytes.len());
        assert!(w.rep_bytes.len() > s.rep_bytes.len());
    }

    #[test]
    fn works_on_1d_fields() {
        let shape = Shape::d1(64);
        let data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let f = Field::new("wave1d", data, shape);
        let codec = LossyCodec::SzRel(1e-6);
        // m = 1 row; PCA degenerates but must not crash.
        let out = pca_precondition(&f, 0.95, &codec);
        let rec = pca_reconstruct(&out.rep_bytes, &out.delta, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
