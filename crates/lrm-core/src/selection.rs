//! Automatic model selection — the paper's stated future work.
//!
//! "We notice that there is no single reduced method that is the best of
//! all datasets. Therefore, it is motivated to propose a model selection
//! strategy that selects the best model prior to data reduction."
//! [`select_best_model`] implements the straightforward strategy: run
//! every candidate on a (sub)sample of the data and keep the one with the
//! best compression ratio. For fields where preconditioning hurts (e.g.
//! the zero-dominated *Fish*), the `Direct` candidate wins and the
//! selector correctly refuses to precondition.

use crate::pipeline::{precondition_impl, CompressionReport, PipelineConfig, ReducedModelKind};
use lrm_compress::Shape;
use lrm_datasets::Field;

/// Outcome of one candidate trial.
#[derive(Debug, Clone)]
pub struct CandidateResult {
    /// The model tried.
    pub model: ReducedModelKind,
    /// Its size report.
    pub report: CompressionReport,
}

/// How [`select_best_model_with`] runs its candidate trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionOptions {
    /// Target fraction of the field each trial sees (default `0.05`).
    /// Sampling is strided — whole z-planes (3-D) or rows (2-D) — so
    /// every candidate still sees real spatial structure.
    pub sample_fraction: f64,
    /// Fields at or below this many values always run full-field: on
    /// tiny fields the trials are already cheap and a subsample would
    /// be too small to rank models faithfully (default `4096`).
    pub min_sample_len: usize,
    /// Force full-field trials regardless of size (the original
    /// brute-force behavior; what [`select_best_model`] uses).
    pub exhaustive: bool,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        Self {
            sample_fraction: 0.05,
            min_sample_len: 4096,
            exhaustive: false,
        }
    }
}

/// What [`select_best_model_with`] found.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The model with the best trial compression ratio.
    pub winner: ReducedModelKind,
    /// Every trial's report, sorted best-first. When `sampled` is true
    /// the byte counts describe the subsample, not the full field.
    pub results: Vec<CandidateResult>,
    /// Whether trials ran on a strided subsample (false = full field).
    pub sampled: bool,
}

/// Tries every candidate model and returns the winner by compression
/// ratio, or `None` when no candidate applies to the field.
///
/// `base` supplies the codecs/bounds; its `model` field is ignored.
/// Candidates that cannot apply (e.g. one-base on a 1-D field) are
/// skipped. Unless [`SelectionOptions::exhaustive`] is set, trials run
/// on a strided subsample of the field ([`SelectionOptions`]'s
/// `sample_fraction`), falling back to the full field when it is too
/// small to subsample — this is what makes a long-lived service's
/// SelectModel request cheap enough to run per-field.
pub fn select_best_model_with(
    field: &Field,
    candidates: &[ReducedModelKind],
    base: &PipelineConfig,
    options: &SelectionOptions,
) -> Option<SelectionOutcome> {
    let subsample = if options.exhaustive {
        None
    } else {
        strided_subsample(field, options)
    };
    let sampled = subsample.is_some();
    let subject = subsample.as_ref().unwrap_or(field);

    let mut results: Vec<CandidateResult> = Vec::new();
    for &model in candidates {
        // Skip inapplicable combinations rather than panic.
        let applicable = match model {
            ReducedModelKind::OneBase | ReducedModelKind::MultiBase(_) => {
                subject.shape.ndims() >= 2
            }
            ReducedModelKind::DuoModel => false, // needs an aux field
            _ => true,
        };
        if !applicable {
            continue;
        }
        let cfg = PipelineConfig { model, ..*base };
        let art = precondition_impl(subject, None, &cfg);
        results.push(CandidateResult {
            model,
            report: art.report,
        });
    }
    if results.is_empty() {
        return None;
    }
    results.sort_by(|a, b| b.report.ratio().total_cmp(&a.report.ratio()));
    Some(SelectionOutcome {
        winner: results[0].model,
        results,
        sampled,
    })
}

/// Tries every candidate model on the **full** `field` and returns the
/// winner (by compression ratio) along with every trial's report,
/// sorted best-first.
///
/// `base` supplies the codecs/bounds; its `model` field is ignored.
/// Candidates that cannot apply (e.g. one-base on a 1-D field) are
/// skipped.
///
/// # Panics
/// Panics when no candidate applies; use [`select_best_model_with`]
/// for the non-panicking (and subsampled) variant.
pub fn select_best_model(
    field: &Field,
    candidates: &[ReducedModelKind],
    base: &PipelineConfig,
) -> (ReducedModelKind, Vec<CandidateResult>) {
    let options = SelectionOptions {
        exhaustive: true,
        ..SelectionOptions::default()
    };
    match select_best_model_with(field, candidates, base, &options) {
        Some(outcome) => (outcome.winner, outcome.results),
        None => panic!("select_best_model: no applicable candidate"),
    }
}

/// Builds the strided trial field: every `stride`-th z-plane (3-D) or
/// row (2-D) or element (1-D), keeping enough slabs that blocked models
/// still see structure. Returns `None` when the field is too small to
/// subsample — the caller then runs full-field.
fn strided_subsample(field: &Field, options: &SelectionOptions) -> Option<Field> {
    let n = field.shape.len();
    if n <= options.min_sample_len
        || options.sample_fraction.is_nan()
        || options.sample_fraction <= 0.0
        || options.sample_fraction >= 1.0
    {
        return None;
    }
    let [nx, ny, nz] = field.shape.dims;
    let stride = (1.0 / options.sample_fraction).ceil().clamp(1.0, 1e9) as usize;
    if nz > 1 {
        let keep = slab_indices(nz, stride, 4)?;
        let plane = nx * ny;
        let mut data = Vec::with_capacity(keep.len() * plane);
        for &z in &keep {
            data.extend_from_slice(&field.data[z * plane..(z + 1) * plane]);
        }
        let shape = Shape::d3(nx, ny, keep.len());
        Some(Field::new(format!("{}~sample", field.name), data, shape))
    } else if ny > 1 {
        let keep = slab_indices(ny, stride, 4)?;
        let mut data = Vec::with_capacity(keep.len() * nx);
        for &y in &keep {
            data.extend_from_slice(&field.data[y * nx..(y + 1) * nx]);
        }
        let shape = Shape::d2(nx, keep.len());
        Some(Field::new(format!("{}~sample", field.name), data, shape))
    } else {
        let keep: Vec<f64> = field.data.iter().step_by(stride).copied().collect();
        if keep.len() < 16 || keep.len() >= n {
            return None;
        }
        let shape = Shape::d1(keep.len());
        Some(Field::new(format!("{}~sample", field.name), keep, shape))
    }
}

/// Indices of the slabs a strided sample keeps: every `stride`-th of
/// `count`, with `stride` shrunk so at least `min_keep` slabs survive.
/// `None` means the sample would not actually shrink the field.
fn slab_indices(count: usize, stride: usize, min_keep: usize) -> Option<Vec<usize>> {
    let stride = stride.min(count.div_ceil(min_keep)).max(1);
    if stride <= 1 {
        return None;
    }
    let keep: Vec<usize> = (0..count).step_by(stride).collect();
    if keep.len() >= count {
        None
    } else {
        Some(keep)
    }
}

/// The default candidate set: direct plus every self-contained reduced
/// model.
pub fn default_candidates() -> Vec<ReducedModelKind> {
    vec![
        ReducedModelKind::Direct,
        ReducedModelKind::OneBase,
        ReducedModelKind::MultiBase(4),
        ReducedModelKind::Pca,
        ReducedModelKind::Svd,
        ReducedModelKind::Wavelet,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_compress::Shape;

    #[test]
    fn selector_prefers_preconditioning_on_symmetric_3d_data() {
        let n = 12;
        let shape = Shape::d3(n, n, n);
        let mut data = Vec::with_capacity(shape.len());
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let zf = z as f64 / (n - 1) as f64;
                    data.push(
                        100.0 * (std::f64::consts::PI * zf).sin()
                            + 0.5 * ((x + y) as f64 * 0.4).sin(),
                    );
                }
            }
        }
        let f = Field::new("sym", data, shape);
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let (winner, results) = select_best_model(&f, &default_candidates(), &base);
        assert_ne!(winner, ReducedModelKind::Wavelet);
        assert!(results.len() >= 4);
        // Results are sorted best-first.
        for w in results.windows(2) {
            assert!(w[0].report.ratio() >= w[1].report.ratio());
        }
    }

    #[test]
    fn selector_falls_back_to_direct_on_zero_dominated_data() {
        // Fish-like: mostly exact zeros. Preconditioners smear the zeros;
        // direct SZ keeps them free.
        let shape = Shape::d2(32, 32);
        let mut data = vec![0.0; shape.len()];
        for i in (0..shape.len()).step_by(17) {
            data[i] = (i as f64 * 0.3).sin() + 2.0;
        }
        let f = Field::new("fishy", data, shape);
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let (winner, _) = select_best_model(&f, &default_candidates(), &base);
        assert_eq!(winner, ReducedModelKind::Direct);
    }

    #[test]
    fn inapplicable_candidates_are_skipped() {
        let shape = Shape::d1(64);
        let data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let f = Field::new("line", data, shape);
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let (_, results) = select_best_model(&f, &default_candidates(), &base);
        assert!(results
            .iter()
            .all(|r| !matches!(r.model, ReducedModelKind::OneBase)));
    }

    #[test]
    #[should_panic(expected = "no applicable candidate")]
    fn empty_candidate_set_panics() {
        let f = Field::new("x", vec![0.0; 4], Shape::d1(4));
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        select_best_model(&f, &[ReducedModelKind::DuoModel], &base);
    }

    #[test]
    fn no_applicable_candidate_is_none_not_panic() {
        let f = Field::new("x", vec![0.0; 4], Shape::d1(4));
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let out = select_best_model_with(
            &f,
            &[ReducedModelKind::DuoModel],
            &base,
            &SelectionOptions::default(),
        );
        assert!(out.is_none());
    }

    #[test]
    fn tiny_fields_fall_back_to_full_field() {
        // At or below min_sample_len the trials must run full-field.
        let shape = Shape::d3(8, 8, 8);
        let data: Vec<f64> = (0..shape.len()).map(|i| (i as f64 * 0.01).sin()).collect();
        let f = Field::new("tiny", data, shape);
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let out = select_best_model_with(
            &f,
            &default_candidates(),
            &base,
            &SelectionOptions::default(),
        )
        .expect("candidates apply");
        assert!(!out.sampled);
    }

    #[test]
    fn subsample_keeps_whole_planes_and_shrinks() {
        let shape = Shape::d3(16, 16, 64);
        let data: Vec<f64> = (0..shape.len()).map(|i| i as f64).collect();
        let f = Field::new("big", data, shape);
        let sub = strided_subsample(&f, &SelectionOptions::default()).expect("sampled");
        let [nx, ny, nz] = sub.shape.dims;
        assert_eq!((nx, ny), (16, 16));
        assert!((4..64).contains(&nz), "kept {nz} planes");
        // First kept plane is plane 0, verbatim.
        assert_eq!(sub.data[..256], f.data[..256]);
    }

    #[test]
    fn sampled_winner_matches_exhaustive_winner_on_seed_datasets() {
        use lrm_datasets::{generate, DatasetKind, SizeClass};
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let sampled_opts = SelectionOptions::default();
        let exhaustive_opts = SelectionOptions {
            exhaustive: true,
            ..SelectionOptions::default()
        };
        for kind in [DatasetKind::Heat3d, DatasetKind::Laplace, DatasetKind::Fish] {
            let field = generate(kind, SizeClass::Small).full;
            let sampled =
                select_best_model_with(&field, &default_candidates(), &base, &sampled_opts)
                    .expect("candidates apply");
            let exhaustive =
                select_best_model_with(&field, &default_candidates(), &base, &exhaustive_opts)
                    .expect("candidates apply");
            assert!(!exhaustive.sampled);
            assert_eq!(
                sampled.winner,
                exhaustive.winner,
                "{}: sampled ({}) vs exhaustive ({}) winner diverged",
                field.name,
                sampled.winner.name(),
                exhaustive.winner.name(),
            );
        }
    }
}
