//! Automatic model selection — the paper's stated future work.
//!
//! "We notice that there is no single reduced method that is the best of
//! all datasets. Therefore, it is motivated to propose a model selection
//! strategy that selects the best model prior to data reduction."
//! [`select_best_model`] implements the straightforward strategy: run
//! every candidate on a (sub)sample of the data and keep the one with the
//! best compression ratio. For fields where preconditioning hurts (e.g.
//! the zero-dominated *Fish*), the `Direct` candidate wins and the
//! selector correctly refuses to precondition.

use crate::pipeline::{precondition_impl, CompressionReport, PipelineConfig, ReducedModelKind};
use lrm_datasets::Field;

/// Outcome of one candidate trial.
#[derive(Debug, Clone)]
pub struct CandidateResult {
    /// The model tried.
    pub model: ReducedModelKind,
    /// Its size report.
    pub report: CompressionReport,
}

/// Tries every candidate model on `field` and returns the winner (by
/// compression ratio) along with every trial's report, sorted best-first.
///
/// `base` supplies the codecs/bounds; its `model` field is ignored.
/// Candidates that cannot apply (e.g. one-base on a 1-D field) are
/// skipped.
pub fn select_best_model(
    field: &Field,
    candidates: &[ReducedModelKind],
    base: &PipelineConfig,
) -> (ReducedModelKind, Vec<CandidateResult>) {
    let mut results: Vec<CandidateResult> = Vec::new();
    for &model in candidates {
        // Skip inapplicable combinations rather than panic.
        let applicable = match model {
            ReducedModelKind::OneBase | ReducedModelKind::MultiBase(_) => field.shape.ndims() >= 2,
            ReducedModelKind::DuoModel => false, // needs an aux field
            _ => true,
        };
        if !applicable {
            continue;
        }
        let cfg = PipelineConfig { model, ..*base };
        let art = precondition_impl(field, None, &cfg);
        results.push(CandidateResult {
            model,
            report: art.report,
        });
    }
    assert!(
        !results.is_empty(),
        "select_best_model: no applicable candidate"
    );
    results.sort_by(|a, b| b.report.ratio().total_cmp(&a.report.ratio()));
    (results[0].model, results)
}

/// The default candidate set: direct plus every self-contained reduced
/// model.
pub fn default_candidates() -> Vec<ReducedModelKind> {
    vec![
        ReducedModelKind::Direct,
        ReducedModelKind::OneBase,
        ReducedModelKind::MultiBase(4),
        ReducedModelKind::Pca,
        ReducedModelKind::Svd,
        ReducedModelKind::Wavelet,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_compress::Shape;

    #[test]
    fn selector_prefers_preconditioning_on_symmetric_3d_data() {
        let n = 12;
        let shape = Shape::d3(n, n, n);
        let mut data = Vec::with_capacity(shape.len());
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let zf = z as f64 / (n - 1) as f64;
                    data.push(
                        100.0 * (std::f64::consts::PI * zf).sin()
                            + 0.5 * ((x + y) as f64 * 0.4).sin(),
                    );
                }
            }
        }
        let f = Field::new("sym", data, shape);
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let (winner, results) = select_best_model(&f, &default_candidates(), &base);
        assert_ne!(winner, ReducedModelKind::Wavelet);
        assert!(results.len() >= 4);
        // Results are sorted best-first.
        for w in results.windows(2) {
            assert!(w[0].report.ratio() >= w[1].report.ratio());
        }
    }

    #[test]
    fn selector_falls_back_to_direct_on_zero_dominated_data() {
        // Fish-like: mostly exact zeros. Preconditioners smear the zeros;
        // direct SZ keeps them free.
        let shape = Shape::d2(32, 32);
        let mut data = vec![0.0; shape.len()];
        for i in (0..shape.len()).step_by(17) {
            data[i] = (i as f64 * 0.3).sin() + 2.0;
        }
        let f = Field::new("fishy", data, shape);
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let (winner, _) = select_best_model(&f, &default_candidates(), &base);
        assert_eq!(winner, ReducedModelKind::Direct);
    }

    #[test]
    fn inapplicable_candidates_are_skipped() {
        let shape = Shape::d1(64);
        let data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let f = Field::new("line", data, shape);
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        let (_, results) = select_best_model(&f, &default_candidates(), &base);
        assert!(results
            .iter()
            .all(|r| !matches!(r.model, ReducedModelKind::OneBase)));
    }

    #[test]
    #[should_panic(expected = "no applicable candidate")]
    fn empty_candidate_set_panics() {
        let f = Field::new("x", vec![0.0; 4], Shape::d1(4));
        let base = PipelineConfig::sz(ReducedModelKind::Direct);
        select_best_model(&f, &[ReducedModelKind::DuoModel], &base);
    }
}
