//! Latent reduced models to precondition lossy compression.
//!
//! This crate is the paper's primary contribution: before compressing a
//! scientific field, identify a **reduced model** — a small latent
//! representation whose reconstruction tracks the data — and store the
//! representation plus the (smoother, hence far more compressible)
//! **delta** instead of the raw field.
//!
//! Two families of reduced models are provided:
//!
//! * [`projection`] — *one-base* (global mid-plane), *multi-base*
//!   (per-block mid-planes), and *DuoModel* (coarse companion run),
//!   reproducing Section IV;
//! * [`dimred`] — PCA, SVD, and thresholded Haar wavelet, reproducing
//!   Section V.
//!
//! [`pipeline`] wires either family into the Fig. 5 workflow
//! (precondition → dual-bound compress → self-describing artifact →
//! reconstruct); [`engine`] is the public entry point — a builder-style
//! [`Pipeline`] that decomposes large fields into z-slab chunks and
//! runs the workflow chunk-parallel on a work-stealing pool.
//! [`selection`] adds the paper's future-work model selector and
//! [`parallel_one_base`] runs Algorithm 1 over the rank simulator of
//! `lrm-parallel`.

// Index-symmetric loops read more clearly than iterator chains in
// numerical kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod codec;
pub mod dimred;
pub mod engine;
pub mod parallel_one_base;
pub mod partitioned;
pub mod pipeline;
pub mod projection;
pub mod selection;
pub mod temporal;
pub(crate) mod wire_meta;

pub use codec::{fpc_paper, fpc_paper_codec, sz_paper_bounds, zfp_paper_bounds, LossyCodec};
pub use engine::{ChunkReport, ChunkedCompression, Pipeline, PipelineBuilder};
pub use lrm_compress::{DecodeError, DecodeResult};
pub use partitioned::{partitioned_precondition, partitioned_reconstruct, PartitionedMethod};
#[allow(deprecated)]
pub use pipeline::{precondition_and_compress, precondition_and_compress_with_aux, reconstruct};
pub use pipeline::{CompressionReport, PipelineConfig, PreconditionedArtifact, ReducedModelKind};
pub use selection::{
    default_candidates, select_best_model, select_best_model_with, CandidateResult,
    SelectionOptions, SelectionOutcome,
};
pub use temporal::{compress_series, reconstruct_series, TemporalSeries};
