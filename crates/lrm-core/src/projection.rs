//! Projection-based reduced models (Section IV): *one-base*,
//! *multi-base*, and *DuoModel*.
//!
//! All three identify a small reference ("base") inside or beside the
//! full-model output, compress the reference, and precondition the field
//! by subtracting the reference's *reconstruction* — so the final error
//! is governed solely by the delta codec's bound.

use crate::codec::LossyCodec;
use lrm_compress::{DecodeResult, Shape};
use lrm_datasets::Field;

/// The reduced representation plus the preconditioned delta, before
/// entropy packaging. `base_recon` is what the decoder will also see.
pub struct ProjectionOutput {
    /// Compressed reduced representation.
    pub rep_bytes: Vec<u8>,
    /// The delta field (original − reconstructed base), same shape as the
    /// input.
    pub delta: Vec<f64>,
    /// Shape of the stored representation (needed to decompress it).
    pub rep_shape: Shape,
}

/// *One-base* (Algorithm 1): the mid-plane along the slowest dimension is
/// the reduced model; every plane of the field subtracts it. On a 3-D
/// field the base is the mid z-plane; on a 2-D field it is the mid y-row
/// (the paper applies the same scheme to the 2-D Laplace output).
pub fn one_base_precondition(field: &Field, orig_codec: &LossyCodec) -> ProjectionOutput {
    let [nx, ny, nz] = field.shape.dims;
    assert!(
        field.shape.ndims() >= 2,
        "one-base: field must be at least 2-D"
    );
    if field.shape.ndims() == 2 {
        // Base = mid row; subtract it from every row.
        let mid = ny / 2;
        let rep_shape = Shape::d1(nx);
        let row: Vec<f64> = (0..nx).map(|x| field.at(x, mid, 0)).collect();
        let rep_bytes = orig_codec.compress(&row, rep_shape);
        let row_recon = orig_codec.decompress_own(&rep_bytes, rep_shape);
        let mut delta = Vec::with_capacity(field.len());
        for y in 0..ny {
            for x in 0..nx {
                delta.push(field.at(x, y, 0) - row_recon[x]);
            }
        }
        return ProjectionOutput {
            rep_bytes,
            delta,
            rep_shape,
        };
    }
    let mid = nz / 2;
    let plane = field.plane_z(mid);
    let rep_shape = Shape::d2(nx, ny);
    let rep_bytes = orig_codec.compress(&plane.data, rep_shape);
    let plane_recon = orig_codec.decompress_own(&rep_bytes, rep_shape);

    let mut delta = Vec::with_capacity(field.len());
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                delta.push(field.at(x, y, z) - plane_recon[y * nx + x]);
            }
        }
    }
    ProjectionOutput {
        rep_bytes,
        delta,
        rep_shape,
    }
}

/// Reconstructs a field from the one-base representation and a decoded
/// delta.
pub fn one_base_reconstruct(
    rep_bytes: &[u8],
    delta: &[f64],
    shape: Shape,
    orig_codec: &LossyCodec,
) -> DecodeResult<Vec<f64>> {
    let [nx, ny, nz] = shape.dims;
    if shape.ndims() == 2 {
        let row = orig_codec.decompress(rep_bytes, Shape::d1(nx))?;
        let mut out = Vec::with_capacity(shape.len());
        for y in 0..ny {
            for x in 0..nx {
                out.push(delta[shape.idx(x, y, 0)] + row[x]);
            }
        }
        return Ok(out);
    }
    let plane = orig_codec.decompress(rep_bytes, Shape::d2(nx, ny))?;
    let mut out = Vec::with_capacity(shape.len());
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                out.push(delta[shape.idx(x, y, z)] + plane[y * nx + x]);
            }
        }
    }
    Ok(out)
}

/// *Multi-base*: the field is split into `gz` z-blocks (the paper's
/// per-subdomain view collapsed onto the z axis, which is the only axis
/// the base planes vary along); each block's local mid-plane is part of
/// the reduced model and is subtracted only within its block. The
/// representation is a `nx × ny × gz` stack of planes.
pub fn multi_base_precondition(
    field: &Field,
    gz: usize,
    orig_codec: &LossyCodec,
) -> ProjectionOutput {
    let [nx, ny, nz] = field.shape.dims;
    assert!(
        field.shape.ndims() >= 2,
        "multi-base: field must be at least 2-D"
    );
    if field.shape.ndims() == 2 {
        // 2-D: blocks along y, one mid-row base per block.
        let g = gz.clamp(1, ny);
        let block_range = |b: usize| (b * ny / g, (b + 1) * ny / g);
        let mut rows = Vec::with_capacity(nx * g);
        for b in 0..g {
            let (y0, y1) = block_range(b);
            let ym = (y0 + y1) / 2;
            for x in 0..nx {
                rows.push(field.at(x, ym, 0));
            }
        }
        let rep_shape = Shape::d2(nx, g);
        let rep_bytes = orig_codec.compress(&rows, rep_shape);
        let rows_recon = orig_codec.decompress_own(&rep_bytes, rep_shape);
        let mut delta = Vec::with_capacity(field.len());
        for y in 0..ny {
            let b = (y * g / ny).min(g - 1);
            for x in 0..nx {
                delta.push(field.at(x, y, 0) - rows_recon[b * nx + x]);
            }
        }
        return ProjectionOutput {
            rep_bytes,
            delta,
            rep_shape,
        };
    }
    let gz = gz.clamp(1, nz);

    // Block b covers z in [b*nz/gz, (b+1)*nz/gz); its base is the middle
    // plane of that range.
    let block_range = |b: usize| (b * nz / gz, (b + 1) * nz / gz);
    let mut planes = Vec::with_capacity(nx * ny * gz);
    for b in 0..gz {
        let (z0, z1) = block_range(b);
        let zm = (z0 + z1) / 2;
        for y in 0..ny {
            for x in 0..nx {
                planes.push(field.at(x, y, zm));
            }
        }
    }
    let rep_shape = Shape::d3(nx, ny, gz);
    let rep_bytes = orig_codec.compress(&planes, rep_shape);
    let planes_recon = orig_codec.decompress_own(&rep_bytes, rep_shape);

    let mut delta = Vec::with_capacity(field.len());
    for z in 0..nz {
        let b = (z * gz / nz).min(gz - 1);
        for y in 0..ny {
            for x in 0..nx {
                delta.push(field.at(x, y, z) - planes_recon[(b * ny + y) * nx + x]);
            }
        }
    }
    ProjectionOutput {
        rep_bytes,
        delta,
        rep_shape,
    }
}

/// Inverse of [`multi_base_precondition`].
pub fn multi_base_reconstruct(
    rep_bytes: &[u8],
    delta: &[f64],
    shape: Shape,
    gz: usize,
    orig_codec: &LossyCodec,
) -> DecodeResult<Vec<f64>> {
    let [nx, ny, nz] = shape.dims;
    if shape.ndims() == 2 {
        let g = gz.clamp(1, ny);
        let rows = orig_codec.decompress(rep_bytes, Shape::d2(nx, g))?;
        let mut out = Vec::with_capacity(shape.len());
        for y in 0..ny {
            let b = (y * g / ny).min(g - 1);
            for x in 0..nx {
                out.push(delta[shape.idx(x, y, 0)] + rows[b * nx + x]);
            }
        }
        return Ok(out);
    }
    let gz = gz.clamp(1, nz);
    let planes = orig_codec.decompress(rep_bytes, Shape::d3(nx, ny, gz))?;
    let mut out = Vec::with_capacity(shape.len());
    for z in 0..nz {
        let b = (z * gz / nz).min(gz - 1);
        for y in 0..ny {
            for x in 0..nx {
                out.push(delta[shape.idx(x, y, z)] + planes[(b * ny + y) * nx + x]);
            }
        }
    }
    Ok(out)
}

/// Trilinear upsampling of a coarse field onto `target` extents
/// (DuoModel's "linear constructed data").
pub fn upsample(coarse: &[f64], cshape: Shape, target: Shape) -> Vec<f64> {
    let [cx, cy, cz] = cshape.dims;
    let [tx, ty, tz] = target.dims;
    let mut out = Vec::with_capacity(target.len());
    let scale = |t: usize, tn: usize, cn: usize| -> (usize, usize, f64) {
        if tn <= 1 || cn <= 1 {
            return (0, 0, 0.0);
        }
        let f = t as f64 * (cn - 1) as f64 / (tn - 1) as f64;
        let i0 = (f.floor().max(0.0) as usize).min(cn - 1);
        let i1 = (i0 + 1).min(cn - 1);
        (i0, i1, f - i0 as f64)
    };
    for z in 0..tz {
        let (z0, z1, fz) = scale(z, tz, cz);
        for y in 0..ty {
            let (y0, y1, fy) = scale(y, ty, cy);
            for x in 0..tx {
                let (x0, x1, fx) = scale(x, tx, cx);
                let g = |xi: usize, yi: usize, zi: usize| coarse[cshape.idx(xi, yi, zi)];
                let c00 = g(x0, y0, z0) * (1.0 - fx) + g(x1, y0, z0) * fx;
                let c10 = g(x0, y1, z0) * (1.0 - fx) + g(x1, y1, z0) * fx;
                let c01 = g(x0, y0, z1) * (1.0 - fx) + g(x1, y0, z1) * fx;
                let c11 = g(x0, y1, z1) * (1.0 - fx) + g(x1, y1, z1) * fx;
                let c0 = c00 * (1.0 - fy) + c10 * fy;
                let c1 = c01 * (1.0 - fy) + c11 * fy;
                out.push(c0 * (1.0 - fz) + c1 * fz);
            }
        }
    }
    out
}

/// *DuoModel*: the reduced model is a separately-simulated coarse run;
/// the delta is against its (compressed) trilinear upsampling.
pub fn duo_model_precondition(
    field: &Field,
    coarse: &Field,
    orig_codec: &LossyCodec,
) -> ProjectionOutput {
    let rep_bytes = orig_codec.compress(&coarse.data, coarse.shape);
    let coarse_recon = orig_codec.decompress_own(&rep_bytes, coarse.shape);
    let up = upsample(&coarse_recon, coarse.shape, field.shape);
    let delta: Vec<f64> = field.data.iter().zip(&up).map(|(a, b)| a - b).collect();
    ProjectionOutput {
        rep_bytes,
        delta,
        rep_shape: coarse.shape,
    }
}

/// Inverse of [`duo_model_precondition`].
pub fn duo_model_reconstruct(
    rep_bytes: &[u8],
    delta: &[f64],
    shape: Shape,
    coarse_shape: Shape,
    orig_codec: &LossyCodec,
) -> DecodeResult<Vec<f64>> {
    let coarse = orig_codec.decompress(rep_bytes, coarse_shape)?;
    let up = upsample(&coarse, coarse_shape, shape);
    Ok(delta.iter().zip(&up).map(|(d, b)| d + b).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heat_like_field(n: usize) -> Field {
        // Smooth in z with a symmetric profile: one-base's sweet spot.
        let shape = Shape::d3(n, n, n);
        let mut data = Vec::with_capacity(shape.len());
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let zf = z as f64 / (n - 1) as f64;
                    data.push(
                        100.0 * (std::f64::consts::PI * zf).sin()
                            + (x as f64 * 0.2).sin() * 3.0
                            + (y as f64 * 0.15).cos() * 2.0,
                    );
                }
            }
        }
        Field::new("heatlike", data, shape)
    }

    #[test]
    fn one_base_roundtrip_is_lossless_with_lossless_delta() {
        let f = heat_like_field(12);
        let codec = LossyCodec::SzRel(1e-6);
        let out = one_base_precondition(&f, &codec);
        // Reconstruct with the exact delta: error must be zero.
        let rec =
            one_base_reconstruct(&out.rep_bytes, &out.delta, f.shape, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn one_base_delta_is_smoother_than_original() {
        // The paper's premise: variations in the delta are smaller than in
        // the raw field, making it more compressible.
        let f = heat_like_field(16);
        let codec = LossyCodec::SzRel(1e-6);
        let out = one_base_precondition(&f, &codec);
        let spread = |d: &[f64]| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in d {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            hi - lo
        };
        assert!(spread(&out.delta) < spread(&f.data));
    }

    #[test]
    fn multi_base_roundtrip() {
        let f = heat_like_field(12);
        let codec = LossyCodec::ZfpPrecision(40);
        let out = multi_base_precondition(&f, 3, &codec);
        let rec =
            multi_base_reconstruct(&out.rep_bytes, &out.delta, f.shape, 3, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_base_deltas_are_smaller_than_one_base() {
        // Bases closer to every plane -> smaller absolute deltas.
        let f = heat_like_field(16);
        let codec = LossyCodec::SzRel(1e-6);
        let one = one_base_precondition(&f, &codec);
        let multi = multi_base_precondition(&f, 4, &codec);
        let energy = |d: &[f64]| d.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(&multi.delta) < energy(&one.delta));
    }

    #[test]
    fn multi_base_rep_is_larger_than_one_base() {
        // The paper's explanation of why multi-base doesn't dominate:
        // more planes to store offset the smaller deltas.
        let f = heat_like_field(16);
        let codec = LossyCodec::SzRel(1e-6);
        let one = one_base_precondition(&f, &codec);
        let multi = multi_base_precondition(&f, 4, &codec);
        assert!(multi.rep_bytes.len() > one.rep_bytes.len());
    }

    #[test]
    fn upsample_reproduces_linear_fields_exactly() {
        let cshape = Shape::d3(3, 3, 3);
        let coarse: Vec<f64> = (0..27)
            .map(|i| {
                let (x, y, z) = (i % 3, (i / 3) % 3, i / 9);
                1.0 + x as f64 * 2.0 + y as f64 * 3.0 + z as f64 * 4.0
            })
            .collect();
        let tshape = Shape::d3(5, 5, 5);
        let up = upsample(&coarse, cshape, tshape);
        for z in 0..5 {
            for y in 0..5 {
                for x in 0..5 {
                    let want = 1.0 + x as f64 + y as f64 * 1.5 + z as f64 * 2.0;
                    let got = up[tshape.idx(x, y, z)];
                    assert!((got - want).abs() < 1e-12, "({x},{y},{z}): {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn upsample_identity_when_shapes_match() {
        let shape = Shape::d2(4, 3);
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(upsample(&data, shape, shape), data);
    }

    #[test]
    fn duo_model_roundtrip() {
        let f = heat_like_field(12);
        // Coarse variant: sample every other point (a stand-in for a
        // coarse simulation).
        let cshape = Shape::d3(6, 6, 6);
        let mut coarse = Vec::with_capacity(cshape.len());
        for z in 0..6 {
            for y in 0..6 {
                for x in 0..6 {
                    coarse.push(f.at(x * 2, y * 2, z * 2));
                }
            }
        }
        let cf = Field::new("coarse", coarse, cshape);
        let codec = LossyCodec::SzRel(1e-6);
        let out = duo_model_precondition(&f, &cf, &codec);
        let rec = duo_model_reconstruct(&out.rep_bytes, &out.delta, f.shape, cshape, &codec)
            .expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2-D")]
    fn one_base_rejects_1d() {
        let f = Field::new("line", vec![0.0; 16], Shape::d1(16));
        one_base_precondition(&f, &LossyCodec::SzRel(1e-5));
    }

    #[test]
    fn one_base_2d_roundtrip() {
        let shape = Shape::d2(12, 10);
        let mut data = Vec::with_capacity(shape.len());
        for y in 0..10 {
            for x in 0..12 {
                data.push((x as f64 * 0.4).sin() * 5.0 + y as f64);
            }
        }
        let f = Field::new("lap", data, shape);
        let codec = LossyCodec::SzRel(1e-6);
        let out = one_base_precondition(&f, &codec);
        let rec = one_base_reconstruct(&out.rep_bytes, &out.delta, shape, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_base_2d_roundtrip() {
        let shape = Shape::d2(16, 12);
        let data: Vec<f64> = (0..shape.len())
            .map(|i| (i as f64 * 0.17).cos() * 3.0)
            .collect();
        let f = Field::new("lap", data, shape);
        let codec = LossyCodec::ZfpPrecision(48);
        let out = multi_base_precondition(&f, 3, &codec);
        let rec =
            multi_base_reconstruct(&out.rep_bytes, &out.delta, shape, 3, &codec).expect("decode");
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
