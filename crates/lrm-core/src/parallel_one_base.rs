//! Algorithm 1 over the rank simulator: distributed one-base delta.
//!
//! The paper's one-base scheme runs on an MPI decomposition: the ranks
//! owning the global mid-plane contribute it, the plane is broadcast,
//! every rank subtracts it locally, and the deltas are gathered. This
//! module executes that exact pattern on `lrm-parallel`'s thread ranks,
//! returning both the assembled delta and the per-rank communication
//! volumes (the quantity *multi-base* exists to avoid).

use lrm_datasets::Field;
use lrm_parallel::{run_ranks, Decomposition};

/// Result of a distributed one-base preconditioning.
#[derive(Debug, Clone)]
pub struct DistributedDelta {
    /// The assembled global delta (same layout as the input field).
    pub delta: Vec<f64>,
    /// The broadcast mid-plane.
    pub plane: Vec<f64>,
    /// Bytes each rank sent during the exchange (broadcast + gather).
    pub bytes_sent_per_rank: Vec<usize>,
}

/// Runs Algorithm 1 on `grid` ranks over `field` (must be 3-D).
pub fn distributed_one_base(field: &Field, grid: [usize; 3]) -> DistributedDelta {
    let [nx, ny, nz] = field.shape.dims;
    assert!(nz >= 2, "distributed one-base: field must be 3-D");
    let d = Decomposition::new([nx, ny, nz], grid);
    let mid_z = nz / 2;

    let results = run_ranks(d.num_ranks(), |ctx| {
        let mut sent = 0usize;
        let local = d.extract(ctx.rank(), &field.data);
        let sd = d.subdomain(ctx.rank());
        let [lx, ly, _] = sd.dims();

        // Owners contribute their (x,y) patch of the global mid-plane.
        let patch: Vec<f64> = if sd.contains_z(mid_z) {
            let zl = mid_z - sd.z.0;
            local[zl * lx * ly..(zl + 1) * lx * ly].to_vec()
        } else {
            Vec::new()
        };
        if ctx.rank() != 0 {
            sent += patch.len() * 8;
        }
        let gathered = ctx.gather(0, patch);

        // Rank 0 assembles the plane and broadcasts it (Algorithm 1's
        // "Broadcast the plane to all other ranks").
        let plane = if ctx.rank() == 0 {
            let mut plane = vec![0.0; nx * ny];
            for (r, part) in gathered.expect("root").iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let psd = d.subdomain(r);
                let mut i = 0;
                for y in psd.y.0..psd.y.1 {
                    for x in psd.x.0..psd.x.1 {
                        plane[y * nx + x] = part[i];
                        i += 1;
                    }
                }
            }
            sent += plane.len() * 8 * (ctx.size() - 1);
            plane
        } else {
            Vec::new()
        };
        let plane = ctx.broadcast(0, plane);

        // Local delta (Algorithm 1's loop over z levels).
        let mut delta = Vec::with_capacity(local.len());
        let mut i = 0;
        for _z in sd.z.0..sd.z.1 {
            for y in sd.y.0..sd.y.1 {
                for x in sd.x.0..sd.x.1 {
                    delta.push(local[i] - plane[y * nx + x]);
                    i += 1;
                }
            }
        }
        if ctx.rank() != 0 {
            sent += delta.len() * 8;
        }
        let gathered_delta = ctx.gather(0, delta);
        (gathered_delta, plane, sent)
    });

    // Assemble at "rank 0".
    let (gathered, plane, _) = &results[0];
    let mut delta = vec![0.0; field.len()];
    for (r, part) in gathered.as_ref().expect("root gathered").iter().enumerate() {
        d.insert(r, part, &mut delta);
    }
    DistributedDelta {
        delta,
        plane: plane.clone(),
        bytes_sent_per_rank: results.iter().map(|(_, _, s)| *s).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_compress::Shape;

    fn field_8() -> Field {
        let shape = Shape::d3(8, 8, 8);
        let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.05).cos() * 10.0).collect();
        Field::new("f", data, shape)
    }

    #[test]
    fn distributed_matches_serial_one_base_delta() {
        let f = field_8();
        let out = distributed_one_base(&f, [2, 2, 2]);
        let mid = 4;
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    let want = f.at(x, y, z) - f.at(x, y, mid);
                    let got = out.delta[f.shape.idx(x, y, z)];
                    assert!((got - want).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn plane_is_the_global_mid_plane() {
        let f = field_8();
        let out = distributed_one_base(&f, [2, 2, 2]);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(out.plane[y * 8 + x], f.at(x, y, 4));
            }
        }
    }

    #[test]
    fn communication_volume_is_accounted() {
        let f = field_8();
        let out = distributed_one_base(&f, [2, 2, 2]);
        assert_eq!(out.bytes_sent_per_rank.len(), 8);
        // Root broadcasts the plane to 7 peers.
        assert!(out.bytes_sent_per_rank[0] >= 7 * 64 * 8);
        // Non-root ranks at least send their deltas.
        for &s in &out.bytes_sent_per_rank[1..] {
            assert!(s >= 64 * 8);
        }
    }

    #[test]
    fn single_rank_grid_works() {
        let f = field_8();
        let out = distributed_one_base(&f, [1, 1, 1]);
        assert_eq!(out.delta.len(), 512);
    }
}
