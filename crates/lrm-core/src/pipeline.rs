//! The end-to-end preconditioning pipeline of Fig. 5.
//!
//! **Reduction phase**: identify the reduced model, compute the delta of
//! the original against the reduced model's reconstruction, compress
//! representation and delta under the dual error bounds, and package
//! everything into a self-describing [`Artifact`].
//!
//! **Reconstruction phase**: parse the artifact, rebuild the reduced
//! model's reconstruction, decompress the delta, and add the two. No
//! external configuration is needed — the artifact's metadata carries
//! the model kind, codecs, and shapes.
//!
//! The public entry point is [`crate::Pipeline`] (builder-style, with
//! chunk-parallel execution); the free functions here
//! ([`precondition_and_compress`], [`reconstruct`]) are the original
//! single-shot API, kept as deprecated shims over the same internals.

use crate::codec::LossyCodec;
use crate::dimred::{
    pca_precondition, pca_reconstruct, svd_precondition, svd_reconstruct, wavelet_precondition,
    wavelet_reconstruct,
};
use crate::projection::{
    duo_model_precondition, duo_model_reconstruct, multi_base_precondition, multi_base_reconstruct,
    one_base_precondition, one_base_reconstruct,
};
use crate::wire_meta::{decode_meta, encode_meta};
use lrm_compress::{DecodeError, DecodeResult, Shape};
use lrm_datasets::Field;
use lrm_io::Artifact;

/// Which reduced model preconditions the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducedModelKind {
    /// No preconditioning: compress the original directly (the paper's
    /// "original" baseline bars).
    Direct,
    /// Global mid-plane base (Section IV, Algorithm 1).
    OneBase,
    /// Per-z-block mid-planes; the parameter is the number of blocks.
    MultiBase(usize),
    /// Coarse-simulation base (prior work the paper compares against);
    /// requires the auxiliary coarse field.
    DuoModel,
    /// Principal component analysis (Section V-A1).
    Pca,
    /// Singular value decomposition (Section V-A2).
    Svd,
    /// Thresholded Haar wavelet (Section V-A3).
    Wavelet,
    /// Partitioned (blocked) PCA — the paper's future work #1; the
    /// parameter is the number of row blocks.
    PcaBlocked(usize),
    /// Partitioned (blocked) truncated SVD; the parameter is the number
    /// of row blocks.
    SvdBlocked(usize),
    /// Randomized truncated SVD (Halko–Martinsson–Tropp sketch) — a fast
    /// path extension addressing the Fig. 12 overhead.
    SvdRandomized,
}

impl ReducedModelKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ReducedModelKind::Direct => "original",
            ReducedModelKind::OneBase => "one-base",
            ReducedModelKind::MultiBase(_) => "multi-base",
            ReducedModelKind::DuoModel => "DuoModel",
            ReducedModelKind::Pca => "PCA",
            ReducedModelKind::Svd => "SVD",
            ReducedModelKind::Wavelet => "Wavelet",
            ReducedModelKind::PcaBlocked(_) => "PCA-blocked",
            ReducedModelKind::SvdBlocked(_) => "SVD-blocked",
            ReducedModelKind::SvdRandomized => "SVD-randomized",
        }
    }
}

/// Pipeline configuration: the model plus the dual-bound codecs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// The reduced model to identify.
    pub model: ReducedModelKind,
    /// Codec/bound for original data and reduced representations.
    pub orig: LossyCodec,
    /// Codec/bound for deltas (looser, per Section V-B).
    pub delta: LossyCodec,
    /// Cumulative-variance rule for PCA/SVD component selection
    /// (paper: 0.95).
    pub variance_fraction: f64,
    /// Wavelet threshold as a fraction of the max coefficient
    /// (paper: 0.05).
    pub theta_fraction: f64,
    /// Compress the delta as a flat 1-D stream instead of with its true
    /// spatial shape. This mirrors how the paper's evaluation feeds
    /// outputs to the SZ/ZFP command-line tools (no dimension metadata),
    /// which is the regime where preconditioning shines: a 1-D predictor
    /// cannot exploit cross-plane redundancy, the reduced model can.
    pub scan_1d: bool,
}

impl PipelineConfig {
    /// The paper's SZ configuration (rel 1e-5 / 1e-3).
    pub fn sz(model: ReducedModelKind) -> Self {
        let (orig, delta) = crate::codec::sz_paper_bounds();
        Self {
            model,
            orig,
            delta,
            variance_fraction: 0.95,
            theta_fraction: 0.05,
            scan_1d: false,
        }
    }

    /// The paper's ZFP configuration (16-bit / 8-bit precision).
    pub fn zfp(model: ReducedModelKind) -> Self {
        let (orig, delta) = crate::codec::zfp_paper_bounds();
        Self {
            model,
            orig,
            delta,
            variance_fraction: 0.95,
            theta_fraction: 0.05,
            scan_1d: false,
        }
    }

    /// Enables or disables 1-D scan-order compression of the delta (see
    /// [`PipelineConfig::scan_1d`]).
    pub fn with_scan_1d(mut self, on: bool) -> Self {
        self.scan_1d = on;
        self
    }
}

/// Size accounting for one preconditioned snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    /// Uncompressed input bytes.
    pub raw_bytes: usize,
    /// Bytes of the reduced representation.
    pub rep_bytes: usize,
    /// Bytes of the compressed delta.
    pub delta_bytes: usize,
    /// Retained components (PCA/SVD), 0 otherwise.
    pub k: usize,
}

impl CompressionReport {
    /// Total stored payload.
    pub fn total_bytes(&self) -> usize {
        self.rep_bytes + self.delta_bytes
    }

    /// Compression ratio: raw / (representation + delta).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.total_bytes().max(1) as f64
    }
}

/// A serialized preconditioned snapshot plus its size report.
#[derive(Debug, Clone)]
pub struct PreconditionedArtifact {
    /// The self-describing artifact bytes (write these to storage).
    pub bytes: Vec<u8>,
    /// Size accounting.
    pub report: CompressionReport,
}

const META: &str = "meta";
const REP: &str = "rep";
const DELTA: &str = "delta";

pub(crate) fn model_tag(model: ReducedModelKind) -> (u8, u32) {
    match model {
        ReducedModelKind::Direct => (0, 0),
        ReducedModelKind::OneBase => (1, 0),
        ReducedModelKind::MultiBase(gz) => (2, gz as u32),
        ReducedModelKind::DuoModel => (3, 0),
        ReducedModelKind::Pca => (4, 0),
        ReducedModelKind::Svd => (5, 0),
        ReducedModelKind::Wavelet => (6, 0),
        ReducedModelKind::PcaBlocked(b) => (7, b as u32),
        ReducedModelKind::SvdBlocked(b) => (8, b as u32),
        ReducedModelKind::SvdRandomized => (9, 0),
    }
}

/// Preconditions and compresses `field` (Fig. 5's reduction phase).
///
/// # Panics
/// Panics if `cfg.model` is [`ReducedModelKind::DuoModel`] — that model
/// needs the coarse companion run; use
/// [`precondition_and_compress_with_aux`].
#[deprecated(since = "0.2.0", note = "use lrm_core::Pipeline::builder()")]
pub fn precondition_and_compress(field: &Field, cfg: &PipelineConfig) -> PreconditionedArtifact {
    precondition_impl(field, None, cfg)
}

/// Like [`precondition_and_compress`], supplying the auxiliary coarse
/// field DuoModel requires.
#[deprecated(since = "0.2.0", note = "use lrm_core::Pipeline::builder()")]
pub fn precondition_and_compress_with_aux(
    field: &Field,
    coarse: &Field,
    cfg: &PipelineConfig,
) -> PreconditionedArtifact {
    precondition_impl(field, Some(coarse), cfg)
}

pub(crate) fn precondition_impl(
    field: &Field,
    coarse: Option<&Field>,
    cfg: &PipelineConfig,
) -> PreconditionedArtifact {
    let shape = field.shape;
    let (rep, delta, aux_shape, k) = match cfg.model {
        ReducedModelKind::Direct => (Vec::new(), field.data.clone(), Shape::d1(0), 0),
        ReducedModelKind::OneBase => {
            let out = one_base_precondition(field, &cfg.orig);
            (out.rep_bytes, out.delta, out.rep_shape, 0)
        }
        ReducedModelKind::MultiBase(gz) => {
            let out = multi_base_precondition(field, gz, &cfg.orig);
            (out.rep_bytes, out.delta, out.rep_shape, 0)
        }
        ReducedModelKind::DuoModel => {
            let c = coarse
                .expect("DuoModel needs the coarse field: use precondition_and_compress_with_aux");
            let out = duo_model_precondition(field, c, &cfg.orig);
            (out.rep_bytes, out.delta, c.shape, 0)
        }
        ReducedModelKind::Pca => {
            let out = pca_precondition(field, cfg.variance_fraction, &cfg.orig);
            (out.rep_bytes, out.delta, Shape::d1(0), out.k)
        }
        ReducedModelKind::Svd => {
            let out = svd_precondition(field, cfg.variance_fraction, &cfg.orig);
            (out.rep_bytes, out.delta, Shape::d1(0), out.k)
        }
        ReducedModelKind::Wavelet => {
            let out = wavelet_precondition(field, cfg.theta_fraction);
            (out.rep_bytes, out.delta, Shape::d1(0), 0)
        }
        ReducedModelKind::PcaBlocked(b) => {
            let out = crate::partitioned::partitioned_precondition(
                field,
                crate::partitioned::PartitionedMethod::Pca,
                b,
                cfg.variance_fraction,
                &cfg.orig,
            );
            (out.rep_bytes, out.delta, Shape::d1(0), out.k)
        }
        ReducedModelKind::SvdBlocked(b) => {
            let out = crate::partitioned::partitioned_precondition(
                field,
                crate::partitioned::PartitionedMethod::Svd,
                b,
                cfg.variance_fraction,
                &cfg.orig,
            );
            (out.rep_bytes, out.delta, Shape::d1(0), out.k)
        }
        ReducedModelKind::SvdRandomized => {
            let out =
                crate::dimred::svd_randomized_precondition(field, cfg.variance_fraction, &cfg.orig);
            (out.rep_bytes, out.delta, Shape::d1(0), out.k)
        }
    };

    // The delta is compressed under the looser bound; Direct compresses
    // the original under the original bound.
    let delta_codec = if cfg.model == ReducedModelKind::Direct {
        &cfg.orig
    } else {
        &cfg.delta
    };
    let delta_shape = if cfg.scan_1d {
        Shape::d1(shape.len())
    } else {
        shape
    };
    let delta_bytes = delta_codec.compress(&delta, delta_shape);

    let mut artifact = Artifact::new();
    artifact.push(
        META,
        encode_meta(
            cfg.model,
            &cfg.orig,
            &cfg.delta,
            shape,
            aux_shape,
            cfg.scan_1d,
        ),
    );
    let rep_len = rep.len();
    artifact.push(REP, rep);
    let dlen = delta_bytes.len();
    artifact.push(DELTA, delta_bytes);

    PreconditionedArtifact {
        bytes: artifact.to_bytes(),
        report: CompressionReport {
            raw_bytes: field.nbytes(),
            rep_bytes: rep_len,
            delta_bytes: dlen,
            k,
        },
    }
}

/// Reconstructs the field from artifact bytes (Fig. 5's reconstruction
/// phase). Returns the data and its shape.
///
/// # Panics
/// Panics on a corrupt artifact. New code should use
/// [`crate::Pipeline::reconstruct`], which reports corruption as a
/// [`DecodeError`] instead.
#[deprecated(since = "0.2.0", note = "use lrm_core::Pipeline::builder()")]
pub fn reconstruct(bytes: &[u8]) -> (Vec<f64>, Shape) {
    reconstruct_impl(bytes).expect("reconstruct: corrupt artifact")
}

pub(crate) fn reconstruct_impl(bytes: &[u8]) -> DecodeResult<(Vec<f64>, Shape)> {
    let artifact = Artifact::from_bytes(bytes)?;
    let meta = decode_meta(artifact.get(META).ok_or(DecodeError::Corrupt {
        what: "artifact missing meta section",
    })?)?;
    let rep = artifact.get(REP).ok_or(DecodeError::Corrupt {
        what: "artifact missing rep section",
    })?;
    let delta_bytes = artifact.get(DELTA).ok_or(DecodeError::Corrupt {
        what: "artifact missing delta section",
    })?;

    let delta_codec = if meta.tag == 0 { meta.orig } else { meta.delta };
    let delta_shape = if meta.scan_1d {
        Shape::d1(meta.shape.len())
    } else {
        meta.shape
    };
    let delta = delta_codec.decompress(delta_bytes, delta_shape)?;

    let data = match meta.tag {
        0 => delta,
        1 => one_base_reconstruct(rep, &delta, meta.shape, &meta.orig)?,
        2 => multi_base_reconstruct(rep, &delta, meta.shape, meta.param as usize, &meta.orig)?,
        3 => duo_model_reconstruct(rep, &delta, meta.shape, meta.aux_shape, &meta.orig)?,
        4 => pca_reconstruct(rep, &delta, &meta.orig)?,
        5 => svd_reconstruct(rep, &delta, &meta.orig)?,
        6 => wavelet_reconstruct(rep, &delta)?,
        7 | 8 => crate::partitioned::partitioned_reconstruct(rep, &delta, &meta.orig)?,
        // Randomized SVD shares the plain SVD representation format.
        9 => svd_reconstruct(rep, &delta, &meta.orig)?,
        tag => {
            return Err(DecodeError::UnknownTag {
                what: "reduced-model",
                tag,
            })
        }
    };
    Ok((data, meta.shape))
}

#[cfg(test)]
mod tests {
    // The tests exercise the deprecated single-shot API on purpose: it
    // must keep behaving identically to the builder path.
    #![allow(deprecated)]
    use super::*;

    fn smooth_3d_field(n: usize) -> Field {
        let shape = Shape::d3(n, n, n);
        let mut data = Vec::with_capacity(shape.len());
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let zf = z as f64 / (n - 1) as f64;
                    data.push(
                        50.0 + 40.0 * (std::f64::consts::PI * zf).sin()
                            + 2.0 * (x as f64 * 0.3).sin()
                            + 1.5 * (y as f64 * 0.2).cos(),
                    );
                }
            }
        }
        Field::new("smooth3d", data, shape)
    }

    fn check_roundtrip(field: &Field, cfg: &PipelineConfig, tol_rel: f64) {
        let art = precondition_and_compress(field, cfg);
        let (rec, shape) = reconstruct(&art.bytes);
        assert_eq!(shape, field.shape);
        assert_eq!(rec.len(), field.len());
        let max = field.data.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for (a, b) in field.data.iter().zip(&rec) {
            assert!(
                (a - b).abs() <= tol_rel * max,
                "{:?}: {a} vs {b}",
                cfg.model
            );
        }
    }

    #[test]
    fn all_models_roundtrip_within_bounds() {
        let f = smooth_3d_field(12);
        for model in [
            ReducedModelKind::Direct,
            ReducedModelKind::OneBase,
            ReducedModelKind::MultiBase(3),
            ReducedModelKind::Pca,
            ReducedModelKind::Svd,
            ReducedModelKind::Wavelet,
        ] {
            check_roundtrip(&f, &PipelineConfig::sz(model), 1e-2);
        }
    }

    #[test]
    fn zfp_configs_roundtrip_too() {
        let f = smooth_3d_field(10);
        for model in [
            ReducedModelKind::Direct,
            ReducedModelKind::OneBase,
            ReducedModelKind::Pca,
        ] {
            check_roundtrip(&f, &PipelineConfig::zfp(model), 5e-2);
        }
    }

    #[test]
    fn duo_model_via_aux_roundtrips() {
        let f = smooth_3d_field(12);
        // Coarse companion: every other sample.
        let cshape = Shape::d3(6, 6, 6);
        let mut cdata = Vec::with_capacity(cshape.len());
        for z in 0..6 {
            for y in 0..6 {
                for x in 0..6 {
                    cdata.push(f.at(x * 2, y * 2, z * 2));
                }
            }
        }
        let coarse = Field::new("coarse", cdata, cshape);
        let cfg = PipelineConfig::sz(ReducedModelKind::DuoModel);
        let art = precondition_and_compress_with_aux(&f, &coarse, &cfg);
        let (rec, _) = reconstruct(&art.bytes);
        let max = f.data.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for (a, b) in f.data.iter().zip(&rec) {
            assert!((a - b).abs() <= 1e-2 * max);
        }
    }

    #[test]
    #[should_panic(expected = "DuoModel needs the coarse field")]
    fn duo_model_without_aux_panics() {
        let f = smooth_3d_field(8);
        precondition_and_compress(&f, &PipelineConfig::sz(ReducedModelKind::DuoModel));
    }

    #[test]
    fn one_base_beats_direct_on_z_symmetric_data() {
        // The headline claim of Fig. 3 at unit-test scale.
        let f = smooth_3d_field(16);
        let direct = precondition_and_compress(&f, &PipelineConfig::sz(ReducedModelKind::Direct));
        let onebase = precondition_and_compress(&f, &PipelineConfig::sz(ReducedModelKind::OneBase));
        assert!(
            onebase.report.ratio() > direct.report.ratio(),
            "one-base {} vs direct {}",
            onebase.report.ratio(),
            direct.report.ratio()
        );
    }

    #[test]
    fn report_accounts_sizes() {
        let f = smooth_3d_field(8);
        let art = precondition_and_compress(&f, &PipelineConfig::sz(ReducedModelKind::OneBase));
        let r = &art.report;
        assert_eq!(r.raw_bytes, 8 * 8 * 8 * 8);
        assert!(r.rep_bytes > 0 && r.delta_bytes > 0);
        assert_eq!(r.total_bytes(), r.rep_bytes + r.delta_bytes);
        assert!(r.ratio() > 1.0);
    }

    #[test]
    fn artifact_is_self_describing() {
        // Reconstruct must need nothing but the bytes.
        let f = smooth_3d_field(8);
        for cfg in [
            PipelineConfig::sz(ReducedModelKind::Pca),
            PipelineConfig::zfp(ReducedModelKind::MultiBase(2)),
        ] {
            let art = precondition_and_compress(&f, &cfg);
            let (rec, shape) = reconstruct(&art.bytes);
            assert_eq!(shape, f.shape);
            assert_eq!(rec.len(), f.len());
        }
    }

    #[test]
    fn direct_mode_matches_raw_codec() {
        let f = smooth_3d_field(8);
        let cfg = PipelineConfig::sz(ReducedModelKind::Direct);
        let art = precondition_and_compress(&f, &cfg);
        let direct = cfg.orig.compress(&f.data, f.shape);
        // Same codec, same bound: the delta section IS the direct stream.
        assert_eq!(art.report.delta_bytes, direct.len());
        assert_eq!(art.report.rep_bytes, 0);
    }
}
