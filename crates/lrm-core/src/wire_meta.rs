//! The pipeline artifact's `meta` stream: a fixed 49-byte record
//! carrying the model tag, codecs, and shapes that
//! [`crate::pipeline`]'s reconstruction phase needs.
//!
//! Layout (all integers LE):
//!
//! | offset | size | field                          |
//! |--------|------|--------------------------------|
//! | 0      | 1    | model tag                      |
//! | 1      | 4    | model parameter, `u32`         |
//! | 5      | 9    | original-field codec           |
//! | 14     | 9    | delta codec                    |
//! | 23     | 24   | shape + aux shape, 6 × `u32`   |
//! | 47     | 1    | 1-D scan flag                  |
//!
//! This module is registered under `[decode]` (and `[taint]`) in
//! `lint.toml`: decoding treats the bytes as hostile — every access is
//! bounds-checked and both shapes are validated against element-count
//! overflow before anything is sized from them.

use crate::codec::LossyCodec;
use crate::pipeline::{model_tag, ReducedModelKind};
use lrm_compress::{DecodeError, DecodeResult, Shape};

/// Exact length of the encoded record.
const META_LEN: usize = 1 + 4 + 9 + 9 + 24 + 1;

/// The decoded `meta` stream.
pub(crate) struct Meta {
    pub tag: u8,
    pub param: u32,
    pub orig: LossyCodec,
    pub delta: LossyCodec,
    pub shape: Shape,
    pub aux_shape: Shape,
    pub scan_1d: bool,
}

pub(crate) fn encode_meta(
    model: ReducedModelKind,
    orig: &LossyCodec,
    delta: &LossyCodec,
    shape: Shape,
    aux_shape: Shape,
    scan_1d: bool,
) -> Vec<u8> {
    let (tag, param) = model_tag(model);
    let mut out = Vec::with_capacity(META_LEN);
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
    out.extend_from_slice(&orig.to_bytes());
    out.extend_from_slice(&delta.to_bytes());
    for d in shape.dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for d in aux_shape.dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    out.push(scan_1d as u8);
    out
}

pub(crate) fn decode_meta(b: &[u8]) -> DecodeResult<Meta> {
    if b.len() < META_LEN {
        return Err(DecodeError::Truncated {
            what: "pipeline meta",
        });
    }
    let byte_at = |pos: usize| -> DecodeResult<u8> {
        b.get(pos).copied().ok_or(DecodeError::Truncated {
            what: "pipeline meta byte",
        })
    };
    let u32_at = |pos: usize| -> DecodeResult<u32> {
        b.get(pos..pos.saturating_add(4))
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
            .ok_or(DecodeError::Truncated {
                what: "pipeline meta field",
            })
    };
    let codec_at = |pos: usize| -> DecodeResult<LossyCodec> {
        LossyCodec::from_bytes(
            b.get(pos..pos.saturating_add(9))
                .ok_or(DecodeError::Truncated {
                    what: "pipeline meta codec",
                })?,
        )
    };
    let checked_shape = |dims: [usize; 3], what: &'static str| -> DecodeResult<Shape> {
        // Shape::len multiplies the extents; a corrupt header must not
        // make that overflow (or commit the decoder to absurd buffers).
        let [d0, d1, d2] = dims;
        d0.checked_mul(d1.max(1))
            .and_then(|p| p.checked_mul(d2.max(1)))
            .ok_or(DecodeError::Corrupt { what })?;
        Ok(Shape { dims })
    };
    let dim = |i: usize| -> DecodeResult<usize> {
        u32_at(23usize.saturating_add(4usize.saturating_mul(i))).map(|d| d as usize)
    };
    Ok(Meta {
        tag: byte_at(0)?,
        param: u32_at(1)?,
        orig: codec_at(5)?,
        delta: codec_at(14)?,
        shape: checked_shape([dim(0)?, dim(1)?, dim(2)?], "pipeline meta shape overflow")?,
        aux_shape: checked_shape(
            [dim(3)?, dim(4)?, dim(5)?],
            "pipeline meta aux shape overflow",
        )?,
        scan_1d: byte_at(47)? != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> LossyCodec {
        LossyCodec::SzRel(1e-5)
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let bytes = encode_meta(
            ReducedModelKind::MultiBase(7),
            &codec(),
            &codec(),
            Shape { dims: [4, 5, 6] },
            Shape { dims: [2, 3, 1] },
            true,
        );
        assert_eq!(bytes.len(), META_LEN);
        let meta = decode_meta(&bytes).expect("roundtrip");
        assert_eq!(meta.tag, 2);
        assert_eq!(meta.param, 7);
        assert_eq!(meta.shape.dims, [4, 5, 6]);
        assert_eq!(meta.aux_shape.dims, [2, 3, 1]);
        assert!(meta.scan_1d);
    }

    #[test]
    fn truncated_record_is_typed() {
        let bytes = encode_meta(
            ReducedModelKind::Direct,
            &codec(),
            &codec(),
            Shape { dims: [1, 1, 1] },
            Shape { dims: [0, 0, 0] },
            false,
        );
        for cut in 0..bytes.len() {
            assert!(
                decode_meta(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn overflowing_shape_is_rejected() {
        let mut bytes = encode_meta(
            ReducedModelKind::Direct,
            &codec(),
            &codec(),
            Shape { dims: [1, 1, 1] },
            Shape { dims: [0, 0, 0] },
            false,
        );
        // Max out all three primary extents so the element count
        // overflows usize.
        for i in 23..35 {
            bytes[i] = 0xff;
        }
        assert!(decode_meta(&bytes).is_err());
    }
}
