//! Corruption robustness of every [`LossyCodec`] variant: each strict
//! prefix of a freshly encoded stream must decode to `Err`, and ≥ 1000
//! deterministically mutated streams per variant must never panic.
//! Together with the codec- and container-level harnesses (in
//! `lrm-compress` and `lrm-io`), this pins the full decode surface the
//! `lrm-lint` rules guard statically.

use lrm_compress::Shape;
use lrm_core::LossyCodec;
use lrm_rng::Rng64;

const FLIP_TRIALS: usize = 1200;

fn variants() -> [LossyCodec; 4] {
    [
        LossyCodec::SzRel(1e-4),
        LossyCodec::SzAbs(1e-3),
        LossyCodec::ZfpPrecision(16),
        LossyCodec::FpcLossless(16),
    ]
}

fn test_field(shape: Shape) -> Vec<f64> {
    (0..shape.len())
        .map(|i| {
            let x = i as f64 * 0.05;
            x.sin() * 25.0 + (x * 0.3).cos() * 4.0 + 60.0
        })
        .collect()
}

#[test]
fn every_variant_rejects_every_prefix() {
    let shape = Shape::d3(6, 6, 4);
    let data = test_field(shape);
    for codec in variants() {
        let stream = codec.compress(&data, shape);
        for cut in 0..stream.len() {
            assert!(
                codec.decompress(&stream[..cut], shape).is_err(),
                "{codec:?}: prefix of {cut}/{} bytes decoded Ok",
                stream.len()
            );
        }
        assert!(
            codec.decompress(&stream, shape).is_ok(),
            "{codec:?}: intact stream"
        );
    }
}

#[test]
fn every_variant_survives_a_thousand_mutations() {
    let shape = Shape::d3(5, 5, 4);
    let data = test_field(shape);
    let mut rng = Rng64::new(0xFEED);
    for codec in variants() {
        let stream = codec.compress(&data, shape);
        for trial in 0..FLIP_TRIALS {
            let mut mutated = stream.clone();
            for _ in 0..1 + rng.range_usize(4) {
                let at = rng.range_usize(mutated.len());
                mutated[at] ^= 1 + rng.range_usize(255) as u8;
            }
            if let Ok(out) = codec.decompress(&mutated, shape) {
                assert_eq!(
                    out.len(),
                    shape.len(),
                    "{codec:?}: trial {trial} decoded to the wrong length"
                );
            }
        }
    }
}

#[test]
fn descriptor_decoding_never_panics_on_garbage() {
    let mut rng = Rng64::new(0xDE5C);
    let mut ok = 0usize;
    for _ in 0..2000 {
        let len = rng.range_usize(12);
        let bytes = rng.vec_u8(len);
        if let Ok(codec) = LossyCodec::from_bytes(&bytes) {
            ok += 1;
            // A descriptor that parses must also round-trip.
            assert_eq!(LossyCodec::from_bytes(&codec.to_bytes()), Ok(codec));
        }
    }
    // Sanity: the fuzz actually hit both accepting and rejecting paths.
    assert!(ok > 0);
}
