//! Chunked-vs-single-chunk equivalence: the chunk-parallel engine must
//! preserve the single-chunk pipeline's error-bound contract for every
//! slab count and thread count, and its output must not depend on the
//! thread count at all.

use lrm_core::{LossyCodec, Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::registry::{generate, DatasetKind, SizeClass};
use lrm_datasets::Field;

const SLABS: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 3] = [1, 2, 4];

fn max_abs_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Reconstruction error of a chunked run must match the serial run's
/// bound: both sit under the same per-value codec contract, so we hold
/// the chunked error to the serial error plus a small slack for
/// different block alignment.
fn check_equivalence(field: &Field, model: ReducedModelKind) {
    let cfg = PipelineConfig::sz(model);
    let serial = Pipeline::builder()
        .model(cfg.model)
        .codec(cfg.orig)
        .delta_codec(cfg.delta)
        .build();
    let serial_art = serial.compress(field);
    let (serial_rec, _) = serial.reconstruct(&serial_art.bytes).expect("decode");
    let serial_err = max_abs_err(&field.data, &serial_rec);
    let max = field.data.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let tol = (serial_err * 4.0).max(1e-2 * max);

    for slabs in SLABS {
        let mut reference: Option<Vec<u8>> = None;
        for threads in THREADS {
            let p = Pipeline::builder()
                .model(cfg.model)
                .codec(cfg.orig)
                .delta_codec(cfg.delta)
                .chunks(slabs)
                .threads(threads)
                .min_chunk_len(0)
                .build();
            let art = p.compress(field);
            // Determinism: bytes must be identical for every thread count.
            match &reference {
                None => reference = Some(art.bytes.clone()),
                Some(r) => assert_eq!(
                    r, &art.bytes,
                    "{model:?} slabs={slabs}: output depends on thread count"
                ),
            }
            let (rec, shape) = p.reconstruct(&art.bytes).expect("decode");
            assert_eq!(shape, field.shape);
            let err = max_abs_err(&field.data, &rec);
            assert!(
                err <= tol,
                "{model:?} slabs={slabs} threads={threads}: err {err} > tol {tol} (serial {serial_err})"
            );
        }
    }
}

#[test]
fn heat3d_chunked_equivalence_across_models() {
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    for model in [
        ReducedModelKind::Direct,
        ReducedModelKind::OneBase,
        ReducedModelKind::MultiBase(2),
        ReducedModelKind::Pca,
        ReducedModelKind::Svd,
        ReducedModelKind::Wavelet,
    ] {
        check_equivalence(&field, model);
    }
}

#[test]
fn laplace_chunked_equivalence() {
    // Laplace is 2-D: chunking must transparently fall back to the
    // serial path and still satisfy the same contract.
    let field = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    for model in [ReducedModelKind::Direct, ReducedModelKind::Pca] {
        check_equivalence(&field, model);
    }
}

#[test]
fn laplace_chunked_is_bitwise_serial() {
    // Non-3-D fields can't slab along z, so any chunk request must
    // produce exactly the serial stream.
    let field = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    let serial = Pipeline::builder().model(ReducedModelKind::Pca).build();
    let chunked = Pipeline::builder()
        .model(ReducedModelKind::Pca)
        .chunks(8)
        .threads(4)
        .min_chunk_len(0)
        .build();
    assert_eq!(
        serial.compress(&field).bytes,
        chunked.compress(&field).bytes
    );
}

#[test]
fn heat3d_one_chunk_is_bitwise_serial() {
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let serial = Pipeline::builder().model(ReducedModelKind::OneBase).build();
    let one_chunk = Pipeline::builder()
        .model(ReducedModelKind::OneBase)
        .chunks(1)
        .threads(4)
        .build();
    assert_eq!(
        serial.compress(&field).bytes,
        one_chunk.compress(&field).bytes
    );
}

#[test]
fn zfp_bounds_also_hold_chunked() {
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let max = field.data.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let p = Pipeline::builder()
        .model(ReducedModelKind::OneBase)
        .codec(LossyCodec::ZfpPrecision(16))
        .delta_codec(LossyCodec::ZfpPrecision(8))
        .chunks(4)
        .threads(2)
        .min_chunk_len(0)
        .build();
    let art = p.compress(&field);
    let (rec, _) = p.reconstruct(&art.bytes).expect("decode");
    let err = max_abs_err(&field.data, &rec);
    assert!(err <= 5e-2 * max, "zfp chunked err {err}");
}

#[test]
fn chunked_artifacts_decode_with_any_handle() {
    // Reconstruction needs only the bytes: a differently-configured
    // pipeline (or a default one) must decode the container.
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let writer = Pipeline::builder()
        .model(ReducedModelKind::Svd)
        .chunks(4)
        .threads(2)
        .min_chunk_len(0)
        .build();
    let art = writer.compress(&field);
    let reader = Pipeline::builder().build();
    let (rec, shape) = reader.reconstruct(&art.bytes).expect("decode");
    assert_eq!(shape, field.shape);
    assert_eq!(rec.len(), field.len());
}
