//! Experiment library behind the `lrm-cli` binary.
//!
//! [`experiments`] holds one driver per table/figure of the paper;
//! [`table`] renders their outputs as aligned text tables. The Criterion
//! benches in `crates/bench` and the workspace integration tests reuse
//! these drivers so that "what the CLI prints", "what the benches
//! measure" and "what the tests assert" are the same code path.

pub mod experiments;
pub mod service;
pub mod table;
