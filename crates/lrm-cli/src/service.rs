//! `lrm-cli serve` / `lrm-cli client` — the serving-layer front end.
//!
//! `serve` runs the `lrm-server` event loop in the foreground
//! (announcing `listening on <addr>` so scripts can poll readiness);
//! `client` drives requests against a running server over one
//! persistent [`Connection`]: ping, compress a generated dataset,
//! decompress an artifact file, field statistics, model selection, a
//! compress→decompress `roundtrip` with an error gate, a `pipeline`
//! check that keeps many requests in flight on one socket and matches
//! responses by request id (the CI server-smoke check), and shutdown.

use std::time::Duration;

use lrm_core::ReducedModelKind;
use lrm_datasets::{generate, DatasetKind, Field, SizeClass};
use lrm_server::{CompressRequest, Connection, Request, Response, SelectRequest, Server};

fn parse_size(s: &str) -> Option<SizeClass> {
    match s {
        "tiny" => Some(SizeClass::Tiny),
        "small" => Some(SizeClass::Small),
        "paper" => Some(SizeClass::Paper),
        _ => None,
    }
}

/// Parses a model name as the CLI spells it: `direct`, `one-base`,
/// `multi-base:N`, `pca`, `svd`, `wavelet`, `pca-blocked:N`,
/// `svd-blocked:N`, `svd-randomized`.
fn parse_model(s: &str) -> Option<ReducedModelKind> {
    let (name, param) = match s.split_once(':') {
        Some((n, p)) => (n, p.parse::<usize>().ok()?.max(1)),
        None => (s, 0),
    };
    match name {
        "direct" | "original" => Some(ReducedModelKind::Direct),
        "one-base" => Some(ReducedModelKind::OneBase),
        "multi-base" => Some(ReducedModelKind::MultiBase(param.max(2))),
        "pca" => Some(ReducedModelKind::Pca),
        "svd" => Some(ReducedModelKind::Svd),
        "wavelet" => Some(ReducedModelKind::Wavelet),
        "pca-blocked" => Some(ReducedModelKind::PcaBlocked(param.max(2))),
        "svd-blocked" => Some(ReducedModelKind::SvdBlocked(param.max(2))),
        "svd-randomized" => Some(ReducedModelKind::SvdRandomized),
        _ => None,
    }
}

/// Flag map over `--key value` pairs plus boolean switches.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
    positional: Vec<String>,
}

const SWITCHES: &[&str] = &["--scan-1d", "--exhaustive", "--quick"];

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut flags = Flags {
            pairs: Vec::new(),
            switches: Vec::new(),
            positional: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if SWITCHES.contains(&a.as_str()) {
                flags.switches.push(a.clone());
            } else if let Some(key) = a.strip_prefix("--") {
                match it.next() {
                    Some(v) => flags.pairs.push((key.to_string(), v.clone())),
                    None => flags.positional.push(a.clone()),
                }
            } else {
                flags.positional.push(a.clone());
            }
        }
        flags
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    fn usize_or(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn fail(msg: &str) -> i32 {
    eprintln!("{msg}");
    2
}

const SERVE_USAGE: &str = "lrm-cli serve [--addr HOST:PORT] [--threads N] [--max-inflight N] \
                           [--max-payload-mb N] [--deadline-secs N] [--chunks N] \
                           [--max-connections N] [--max-pipeline-depth N]";

/// `lrm-cli serve`: bind, announce, serve until a Shutdown request.
pub fn run_serve(args: &[String]) -> i32 {
    let flags = Flags::parse(args);
    if let Some(p) = flags.positional.first() {
        return fail(&format!("serve: unexpected argument {p:?}\n{SERVE_USAGE}"));
    }
    let builder = Server::builder()
        .addr(flags.get("addr").unwrap_or("127.0.0.1:7421"))
        .threads(flags.usize_or("threads", 0))
        .max_inflight(flags.usize_or("max-inflight", 32).max(1))
        .max_payload(flags.usize_or("max-payload-mb", 256).max(1) << 20)
        .deadline(Duration::from_secs(
            flags.usize_or("deadline-secs", 30).max(1) as u64,
        ))
        .default_chunks(flags.usize_or("chunks", 1).max(1))
        .max_connections(flags.usize_or("max-connections", 1024).max(1))
        .max_pipeline_depth(flags.usize_or("max-pipeline-depth", 64).max(1));
    let server = match builder.bind() {
        Ok(s) => s,
        Err(e) => return fail(&format!("serve: cannot bind: {e}")),
    };
    match server.local_addr() {
        Ok(a) => println!("lrm-server listening on {a}"),
        Err(e) => return fail(&format!("serve: no local address: {e}")),
    }
    match server.serve() {
        Ok(stats) => {
            println!(
                "lrm-server drained and stopped: {} served, {} rejected busy, {} connections",
                stats.served, stats.rejected_busy, stats.connections
            );
            0
        }
        Err(e) => fail(&format!("serve: {e}")),
    }
}

const CLIENT_USAGE: &str =
    "lrm-cli client <ping|compress|decompress|stats|select|roundtrip|pipeline|shutdown> \
                            [--addr HOST:PORT] [--dataset NAME] [--size tiny|small|paper] \
                            [--model NAME[:N]] [--scan-1d] [--chunks N] [--exhaustive] \
                            [--out FILE] [--in FILE] [--max-err X] [--requests N]";

fn dataset_field(flags: &Flags) -> Result<Field, String> {
    let name = flags.get("dataset").ok_or("missing --dataset")?;
    let kind = DatasetKind::parse(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let size = match flags.get("size") {
        Some(s) => parse_size(s).ok_or_else(|| format!("unknown size {s:?}"))?,
        None => SizeClass::Tiny,
    };
    Ok(generate(kind, size).full)
}

/// Opens the one persistent session every client subcommand runs over.
fn connect(flags: &Flags) -> Result<(Connection, String), String> {
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7421").to_string();
    let conn = Connection::open(addr.as_str()).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    Ok((conn, addr))
}

fn compress_request_from(flags: &Flags, field: &Field) -> Result<CompressRequest, String> {
    let model = match flags.get("model") {
        Some(m) => parse_model(m).ok_or_else(|| format!("unknown model {m:?}"))?,
        None => ReducedModelKind::OneBase,
    };
    let (orig, delta) = lrm_core::sz_paper_bounds();
    Ok(CompressRequest {
        model,
        orig,
        delta,
        scan_1d: flags.has("--scan-1d"),
        chunks: flags.usize_or("chunks", 0).min(u16::MAX as usize) as u16,
        shape: field.shape,
        data: field.data.clone(),
    })
}

/// `lrm-cli client <command>`: one session, human-readable result.
pub fn run_client(args: &[String]) -> i32 {
    let Some(command) = args.first().map(String::as_str) else {
        return fail(CLIENT_USAGE);
    };
    let flags = Flags::parse(&args[1..]);
    let (mut conn, addr) = match connect(&flags) {
        Ok(c) => c,
        Err(e) => return fail(&format!("client: {e}")),
    };
    let outcome = match command {
        "ping" => conn.ping(b"lrm").map(|echo| {
            println!("pong ({} bytes echoed) from {addr}", echo.len());
        }),
        "compress" => dataset_field(&flags)
            .map_err(|e| fail_now(&e))
            .and_then(|field| {
                let req = compress_request_from(&flags, &field).map_err(|e| fail_now(&e))?;
                let model = req.model;
                conn.compress(req).map(|(report, artifact)| {
                    println!(
                        "{} via {}: {} -> {} bytes (ratio {:.2}x)",
                        field.name,
                        model.name(),
                        report.raw_bytes,
                        report.rep_bytes + report.delta_bytes,
                        report.ratio()
                    );
                    if let Some(path) = flags.get("out") {
                        match std::fs::write(path, &artifact) {
                            Ok(()) => println!("artifact written to {path}"),
                            Err(e) => eprintln!("cannot write {path}: {e}"),
                        }
                    }
                })
            }),
        "decompress" => {
            let Some(path) = flags.get("in") else {
                return fail("decompress: missing --in FILE");
            };
            match std::fs::read(path) {
                Ok(bytes) => conn.decompress(&bytes).map(|(shape, data)| {
                    println!(
                        "reconstructed {} values, shape {:?}, from {path}",
                        data.len(),
                        shape.dims
                    );
                }),
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            }
        }
        "stats" => dataset_field(&flags)
            .map_err(|e| fail_now(&e))
            .and_then(|field| {
                conn.field_stats(field.shape, &field.data).map(|s| {
                    println!(
                        "{}: count {} min {:.6} max {:.6} mean {:.6} variance {:.6e} \
                         byte-entropy {:.3}",
                        field.name, s.count, s.min, s.max, s.mean, s.variance, s.byte_entropy
                    );
                })
            }),
        "select" => dataset_field(&flags)
            .map_err(|e| fail_now(&e))
            .and_then(|field| {
                let (orig, delta) = lrm_core::sz_paper_bounds();
                conn.select_model(SelectRequest {
                    exhaustive: flags.has("--exhaustive"),
                    orig,
                    delta,
                    shape: field.shape,
                    data: field.data.clone(),
                })
                .map(|reply| {
                    println!(
                        "{}: winner {} ({}; {} trials)",
                        field.name,
                        reply.winner.name(),
                        if reply.sampled {
                            "strided sample"
                        } else {
                            "full field"
                        },
                        reply.trials.len()
                    );
                    for t in &reply.trials {
                        println!(
                            "  {:<16} {:>10} -> {:>8} bytes (ratio {:.2}x)",
                            t.model.name(),
                            t.raw_bytes,
                            t.total_bytes,
                            t.ratio()
                        );
                    }
                })
            }),
        "roundtrip" => return run_roundtrip(&mut conn, &flags),
        "pipeline" => return run_pipeline(&mut conn, &flags),
        "shutdown" => conn.shutdown().map(|()| {
            println!("server at {addr} acknowledged shutdown");
        }),
        other => {
            return fail(&format!(
                "client: unknown command {other:?}\n{CLIENT_USAGE}"
            ))
        }
    };
    match outcome {
        Ok(()) => 0,
        Err(e) => fail(&format!("client {command}: {e}")),
    }
}

/// Maps a usage error onto the client-call error type so the two error
/// paths share one exit; prints immediately.
fn fail_now(msg: &str) -> lrm_server::ClientError {
    lrm_server::ClientError::Io(std::io::Error::other(msg.to_string()))
}

/// Compress then decompress one dataset through the server and gate on
/// the worst pointwise error.
fn run_roundtrip(conn: &mut Connection, flags: &Flags) -> i32 {
    let field = match dataset_field(flags) {
        Ok(f) => f,
        Err(e) => return fail(&format!("roundtrip: {e}")),
    };
    let req = match compress_request_from(flags, &field) {
        Ok(r) => r,
        Err(e) => return fail(&format!("roundtrip: {e}")),
    };
    let model = req.model;
    let (report, artifact) = match conn.compress(req) {
        Ok(r) => r,
        Err(e) => return fail(&format!("roundtrip compress: {e}")),
    };
    let (shape, data) = match conn.decompress(&artifact) {
        Ok(r) => r,
        Err(e) => return fail(&format!("roundtrip decompress: {e}")),
    };
    if shape != field.shape || data.len() != field.len() {
        return fail(&format!(
            "roundtrip: shape mismatch, sent {:?} got back {:?}",
            field.shape.dims, shape.dims
        ));
    }
    let worst = data
        .iter()
        .zip(&field.data)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    // Default gate: 2e-3 of the value range, the dual-bound SZ envelope
    // (rep at rel 1e-5 + delta at rel 1e-3) with slack.
    let (lo, hi) = field.min_max();
    let default_tol = 2e-3 * (hi - lo).max(f64::MIN_POSITIVE);
    let tol = flags
        .get("max-err")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default_tol);
    println!(
        "{} via {}: ratio {:.2}x, max abs err {worst:.3e} (gate {tol:.3e})",
        field.name,
        model.name(),
        report.ratio()
    );
    if worst.is_finite() && worst <= tol {
        println!("roundtrip OK");
        0
    } else {
        eprintln!("roundtrip FAILED: error exceeds gate");
        1
    }
}

/// Pipelined smoke: queue a compress plus `--requests N` pings on ONE
/// connection before reading anything, then wait on the compress handle
/// first so every pong must be matched to its handle by request id —
/// the CI check that v2 pipelining actually works end to end.
fn run_pipeline(conn: &mut Connection, flags: &Flags) -> i32 {
    let field = match dataset_field(flags) {
        Ok(f) => f,
        Err(e) => return fail(&format!("pipeline: {e}")),
    };
    let req = match compress_request_from(flags, &field) {
        Ok(r) => r,
        Err(e) => return fail(&format!("pipeline: {e}")),
    };
    let n = flags.usize_or("requests", 8).clamp(1, 1024);

    let compress = match conn.send(&Request::Compress(req)) {
        Ok(h) => h,
        Err(e) => return fail(&format!("pipeline send compress: {e}")),
    };
    let mut pings = Vec::with_capacity(n);
    for i in 0..n {
        let echo = (i as u64).to_le_bytes().to_vec();
        match conn.send(&Request::Ping { echo: echo.clone() }) {
            Ok(h) => pings.push((h, echo)),
            Err(e) => return fail(&format!("pipeline send ping {i}: {e}")),
        }
    }
    let ratio = match conn.wait(compress) {
        Ok(Response::Compressed { report, .. }) => report.ratio(),
        Ok(other) => return fail(&format!("pipeline: expected Compressed, got {other:?}")),
        Err(e) => return fail(&format!("pipeline wait compress: {e}")),
    };
    // Reverse order: the stash must hold every out-of-order reply.
    for (handle, echo) in pings.into_iter().rev() {
        match conn.wait(handle) {
            Ok(Response::Pong { echo: got }) if got == echo => {}
            Ok(other) => return fail(&format!("pipeline: mismatched pong, got {other:?}")),
            Err(e) => return fail(&format!("pipeline wait ping: {e}")),
        }
    }
    println!(
        "pipeline OK: 1 compress (ratio {ratio:.2}x) + {n} pings in flight on one connection, \
         all matched by request id"
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_server::ServerConfig;

    #[test]
    fn model_names_parse() {
        assert_eq!(parse_model("direct"), Some(ReducedModelKind::Direct));
        assert_eq!(parse_model("one-base"), Some(ReducedModelKind::OneBase));
        assert_eq!(
            parse_model("multi-base:4"),
            Some(ReducedModelKind::MultiBase(4))
        );
        assert_eq!(
            parse_model("svd-blocked:3"),
            Some(ReducedModelKind::SvdBlocked(3))
        );
        assert_eq!(parse_model("duo"), None);
    }

    #[test]
    fn flags_parse_pairs_switches_and_positional() {
        let args: Vec<String> = ["--addr", "1.2.3.4:9", "--scan-1d", "extra"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args);
        assert_eq!(f.get("addr"), Some("1.2.3.4:9"));
        assert!(f.has("--scan-1d"));
        assert_eq!(f.positional, vec!["extra".to_string()]);
        assert_eq!(f.usize_or("missing", 7), 7);
    }

    #[test]
    fn serve_and_client_roundtrip_over_loopback() {
        // End-to-end through the CLI entry points (ephemeral port).
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || server.serve().expect("serve"));

        let args: Vec<String> = [
            "--addr",
            &addr,
            "--dataset",
            "heat3d",
            "--size",
            "tiny",
            "--model",
            "one-base",
            "--scan-1d",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let flags = Flags::parse(&args);
        let (mut conn, _) = connect(&flags).expect("connect");
        assert_eq!(run_roundtrip(&mut conn, &flags), 0);
        // The pipelined smoke runs over the same session.
        assert_eq!(run_pipeline(&mut conn, &flags), 0);

        conn.shutdown().expect("shutdown");
        handle.join().expect("join");
    }
}
