//! `lrm-cli` — regenerate every table and figure of the paper.
//!
//! ```text
//! lrm-cli <experiment> [--size tiny|small|paper] [--outputs N] [--procs N]
//!                      [--threads N] [--chunks N]
//!
//! experiments:
//!   fig1 table2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table4
//!   select   (the model-selection extension)
//!   chunked  (chunk-parallel engine: per-chunk and aggregate ratios)
//!   all      (everything, in paper order)
//! ```

use lrm_cli::experiments::{
    characteristics, dimred, end_to_end, overhead, projection, rate_distortion,
};
use lrm_cli::table::{f, render};
use lrm_datasets::SizeClass;

struct Args {
    experiment: String,
    size: SizeClass,
    outputs: usize,
    procs: usize,
    threads: usize,
    chunks: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        size: SizeClass::Small,
        outputs: 20,
        procs: 64,
        threads: 1,
        chunks: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                args.size = match it.next().as_deref() {
                    Some("tiny") => SizeClass::Tiny,
                    Some("small") => SizeClass::Small,
                    Some("paper") => SizeClass::Paper,
                    other => {
                        eprintln!("unknown size {other:?} (tiny|small|paper)");
                        std::process::exit(2);
                    }
                }
            }
            "--outputs" => {
                args.outputs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--outputs needs a number");
                    std::process::exit(2);
                })
            }
            "--procs" => {
                args.procs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--procs needs a number");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                args.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number (0 = auto)");
                    std::process::exit(2);
                })
            }
            "--chunks" => {
                args.chunks = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--chunks needs a number");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if args.experiment.is_empty() => args.experiment = other.to_string(),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if args.experiment.is_empty() {
        print_help();
        std::process::exit(2);
    }
    args
}

fn print_help() {
    println!(
        "lrm-cli <experiment> [--size tiny|small|paper] [--outputs N] [--procs N] [--threads N] [--chunks N]\n\
         experiments: fig1 table2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table4 select chunked dist temporal verify all\n\
         bench: run the lrm-bench throughput harness at the chosen --size\n\
         serve: run the compression service (lrm-cli serve --help-style flags: --addr --threads --max-inflight)\n\
         client: talk to a running service (lrm-cli client <ping|compress|decompress|stats|select|roundtrip|shutdown>)"
    );
}

/// Drives the `lrm-bench` harness binary: the sibling executable in the
/// same target directory when present (normal `cargo build` layout),
/// else via `cargo run`. A subprocess rather than a library call keeps
/// the dependency graph acyclic (lrm-bench depends on lrm-cli for its
/// table renderer).
fn run_bench(size: SizeClass) {
    println!("== Benchmark: codec throughput (lrm-bench) ==");
    let size_name = match size {
        SizeClass::Tiny => "tiny",
        SizeClass::Small => "small",
        SizeClass::Paper => "paper",
    };
    let sibling = std::env::current_exe().ok().and_then(|p| {
        let cand = p.with_file_name("lrm-bench");
        cand.exists().then_some(cand)
    });
    let status = match sibling {
        Some(bin) => std::process::Command::new(bin)
            .args(["--size", size_name])
            .status(),
        None => std::process::Command::new("cargo")
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "lrm-bench",
                "--",
                "--size",
                size_name,
            ])
            .status(),
    };
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("lrm-bench exited with {s}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("failed to launch lrm-bench: {e}");
            std::process::exit(1);
        }
    }
}

fn run_fig1(size: SizeClass) {
    println!("== Fig. 1: data characteristics, full vs reduced model ==");
    let rows: Vec<Vec<String>> = characteristics::fig1(size)
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                f(r.full.byte_entropy),
                f(r.reduced.byte_entropy),
                f(r.full.byte_mean),
                f(r.reduced.byte_mean),
                f(r.full.serial_correlation),
                f(r.reduced.serial_correlation),
                f(r.ks),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "dataset",
                "ent(full)",
                "ent(red)",
                "mean(full)",
                "mean(red)",
                "corr(full)",
                "corr(red)",
                "KS"
            ],
            &rows
        )
    );
}

fn run_table2(size: SizeClass) {
    println!("== Table II: Heat3d full model vs projected reduced model ==");
    let t = characteristics::table2(size);
    let rows = vec![
        vec![
            "Problem size".into(),
            format!("{0}x{0}x{0}", t.full_n),
            format!("{0}x{0}", t.reduced_n),
        ],
        vec![
            "# of steps".into(),
            t.full_steps.to_string(),
            t.reduced_steps.to_string(),
        ],
        vec!["Time step".into(), f(t.full_dt), f(t.reduced_dt)],
        vec![
            "Byte entropy".into(),
            f(t.full_stats.byte_entropy),
            f(t.reduced_stats.byte_entropy),
        ],
        vec![
            "Byte mean".into(),
            f(t.full_stats.byte_mean),
            f(t.reduced_stats.byte_mean),
        ],
        vec![
            "Serial correlation".into(),
            f(t.full_stats.serial_correlation),
            f(t.reduced_stats.serial_correlation),
        ],
    ];
    println!("{}", render(&["", "Full model", "Reduced model"], &rows));
}

fn run_fig3(size: SizeClass, outputs: usize) {
    println!("== Fig. 3: compression ratios, projection-based methods ({outputs} outputs) ==");
    let rows: Vec<Vec<String>> = projection::fig3(size, outputs)
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.compressor.to_string(),
                r.method.to_string(),
                f(r.ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["dataset", "compressor", "method", "ratio"], &rows)
    );
}

fn run_fig4(size: SizeClass, outputs: usize) {
    println!("== Fig. 4: improvement vs compressibility (one-base, ZFP) ==");
    let rows: Vec<Vec<String>> = projection::fig4(size, outputs)
        .into_iter()
        .map(|p| vec![p.dataset.to_string(), f(p.zfp_ratio), f(p.improvement)])
        .collect();
    println!(
        "{}",
        render(
            &["dataset", "ZFP ratio (original)", "improvement (x)"],
            &rows
        )
    );
}

fn dimred_table(size: SizeClass, metric: &str) {
    let grid = dimred::dimred_grid(size);
    let rows: Vec<Vec<String>> = grid
        .into_iter()
        .map(|r| {
            let value = match metric {
                "ratio" => f(r.ratio),
                "rep" => r.rep_bytes.to_string(),
                _ => f(r.rmse),
            };
            vec![
                r.dataset.to_string(),
                r.method.to_string(),
                r.codec.to_string(),
                value,
                r.k.to_string(),
            ]
        })
        .collect();
    let header = match metric {
        "ratio" => "ratio",
        "rep" => "rep bytes",
        _ => "RMSE",
    };
    println!(
        "{}",
        render(&["dataset", "method", "codec", header, "k"], &rows)
    );
}

fn run_spectrum(rows: Vec<dimred::SpectrumRow>, label: &str) {
    let table_rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            let mut row = vec![r.dataset.to_string()];
            for i in 0..5 {
                row.push(r.proportions.get(i).map(|&p| f(p)).unwrap_or_default());
            }
            row.push(r.k95.to_string());
            row
        })
        .collect();
    println!("== {label} ==");
    println!(
        "{}",
        render(
            &["dataset", "1st", "2nd", "3rd", "4th", "5th", "k(95%)"],
            &table_rows
        )
    );
}

fn run_fig11(size: SizeClass) {
    println!("== Fig. 11: ratio vs RMSE under the ZFP precision sweep ==");
    let rows: Vec<Vec<String>> = rate_distortion::fig11(size)
        .into_iter()
        .map(|p| {
            vec![
                p.dataset.to_string(),
                p.method.to_string(),
                p.precision.to_string(),
                f(p.rmse),
                f(p.ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["dataset", "method", "precision", "RMSE", "ratio"], &rows)
    );
}

fn run_fig12(size: SizeClass) {
    println!("== Fig. 12: compression/decompression overhead (vs direct ZFP) ==");
    let rows: Vec<Vec<String>> = overhead::fig12(size)
        .into_iter()
        .map(|r| {
            vec![
                r.method.to_string(),
                f(r.compress_s),
                f(r.compress_rel),
                f(r.decompress_s),
                f(r.decompress_rel),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "method",
                "compress (s)",
                "x vs ZFP",
                "decompress (s)",
                "x vs ZFP"
            ],
            &rows
        )
    );
}

fn run_table4(size: SizeClass, procs: usize) {
    println!("== Table IV (a): storage model fed with the paper's measured inputs ==");
    let to_rows = |rows: Vec<lrm_io::EndToEndRow>| -> Vec<Vec<String>> {
        rows.into_iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.compression_time.map(f).unwrap_or_else(|| "N/A".into()),
                    f(r.io_time),
                    f(r.total()),
                ]
            })
            .collect()
    };
    println!(
        "{}",
        render(
            &[
                "Method",
                "Compression time (s)",
                "I/O time (s)",
                "Total (s)"
            ],
            &to_rows(end_to_end::table4_modeled())
        )
    );
    println!("== Table IV (b): measured codec throughput, calibrated I/O model ==");
    println!(
        "{}",
        render(
            &[
                "Method",
                "Compression time (s)",
                "I/O time (s)",
                "Total (s)"
            ],
            &to_rows(end_to_end::table4_measured(size, procs))
        )
    );
    println!("== Staging pipeline (live run) ==");
    let demo = end_to_end::staging_demo(size, 4);
    println!(
        "staged {} snapshots; app blocked {:.4}s of {:.4}s total; {} -> {} bytes\n",
        demo.snapshots, demo.app_blocked_s, demo.staging_total_s, demo.raw_bytes, demo.stored_bytes
    );
}

fn run_select(size: SizeClass) {
    println!("== Model selection (paper future work): best model per dataset ==");
    use lrm_core::{default_candidates, select_best_model, PipelineConfig, ReducedModelKind};
    use lrm_datasets::{generate, DatasetKind};
    let base = PipelineConfig::sz(ReducedModelKind::Direct);
    let rows: Vec<Vec<String>> = DatasetKind::ALL
        .into_iter()
        .map(|kind| {
            let field = generate(kind, size).full;
            let (winner, results) = select_best_model(&field, &default_candidates(), &base);
            let best = results[0].report.ratio();
            let direct = results
                .iter()
                .find(|r| r.model == ReducedModelKind::Direct)
                .map(|r| r.report.ratio())
                .unwrap_or(0.0);
            vec![
                kind.name().to_string(),
                winner.name().to_string(),
                f(best),
                f(direct),
                f(best / direct.max(1e-12)),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "dataset",
                "best model",
                "best ratio",
                "direct ratio",
                "gain"
            ],
            &rows
        )
    );
}

fn run_dist(size: SizeClass) {
    use lrm_datasets::heat3d::Heat3d;
    use lrm_datasets::heat3d_dist::solve_distributed;
    println!("== Distributed Heat3d (halo exchange over thread ranks) ==");
    let cfg = match size {
        SizeClass::Tiny => Heat3d {
            n: 16,
            steps: 50,
            dt_factor: 0.02,
            ..Default::default()
        },
        SizeClass::Small => Heat3d {
            n: 48,
            steps: 500,
            dt_factor: 0.004,
            ..Default::default()
        },
        SizeClass::Paper => Heat3d {
            n: 96,
            steps: 2000,
            dt_factor: 0.004,
            ..Default::default()
        },
    };
    let serial = {
        let t0 = std::time::Instant::now();
        let f = cfg.solve();
        (f, t0.elapsed())
    };
    for ranks in [2usize, 4, 8] {
        let t0 = std::time::Instant::now();
        let dist = solve_distributed(&cfg, ranks);
        let dt = t0.elapsed();
        let identical = serial
            .0
            .data
            .iter()
            .zip(&dist.data)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "ranks={ranks}: {:?} (serial {:?}), bitwise-identical to serial: {identical}",
            dt, serial.1
        );
    }
    println!();
}

fn run_temporal(size: SizeClass, outputs: usize) {
    use lrm_core::temporal::compress_series;
    use lrm_core::{sz_paper_bounds, Pipeline, PipelineConfig, ReducedModelKind};
    use lrm_datasets::{snapshots, DatasetKind};
    println!("== Temporal series preconditioning (extension) ==");
    let fields = snapshots(DatasetKind::Heat3d, outputs, size);
    let (base, delta) = sz_paper_bounds();
    let series = compress_series(&fields, &base, &delta);
    let direct_total: usize = fields
        .iter()
        .map(|f| {
            Pipeline::from_config(PipelineConfig::sz(ReducedModelKind::Direct).with_scan_1d(true))
                .compress(f)
                .report
                .total_bytes()
        })
        .sum();
    println!(
        "{} snapshots: temporal {} bytes (ratio {:.2}x) vs per-snapshot direct {} bytes (ratio {:.2}x)",
        fields.len(),
        series.snapshot_bytes.iter().sum::<usize>(),
        series.ratio(),
        direct_total,
        series.raw_bytes as f64 / direct_total.max(1) as f64
    );
    println!("per-snapshot bytes: {:?}\n", series.snapshot_bytes);
}

fn run_verify(size: SizeClass) {
    use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
    use lrm_datasets::{generate, DatasetKind};
    use lrm_stats::{Bound, BoundReport};
    println!("== Bound verification: reconstruction error vs the configured bound ==");
    println!(
        "{:<14} {:<10} {:>10} {:>12} {:>12} {:>8}",
        "dataset", "model", "violations", "worst util", "mean util", "holds"
    );
    for kind in DatasetKind::ALL {
        let field = generate(kind, size).full;
        for model in [ReducedModelKind::Direct, ReducedModelKind::OneBase] {
            if model == ReducedModelKind::OneBase && field.shape.ndims() < 2 {
                continue;
            }
            let cfg = PipelineConfig::sz(model).with_scan_1d(true);
            let pipeline = Pipeline::from_config(cfg);
            let art = pipeline.compress(&field);
            let (rec, _) = pipeline
                .reconstruct(&art.bytes)
                .expect("artifact just produced must decode");
            // Direct mode honors rel 1e-5 against block maxima; the
            // preconditioned path adds the rel 1e-3 delta bound on top.
            // Check against the loose end-to-end envelope.
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in &field.data {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let envelope = (hi - lo).max(1e-12) * 2e-3;
            let report = BoundReport::check(&field.data, &rec, Bound::Absolute(envelope));
            println!(
                "{:<14} {:<10} {:>10} {:>12.4} {:>12.4} {:>8}",
                kind.name(),
                model.name(),
                report.violations,
                report.worst_utilization,
                report.mean_utilization,
                report.holds()
            );
        }
    }
    println!();
}

fn run_chunked(size: SizeClass, threads: usize, chunks: usize) {
    use lrm_core::{Pipeline, ReducedModelKind};
    use lrm_datasets::{generate, DatasetKind};
    println!("== Chunk-parallel engine: per-chunk and aggregate ratios ==");
    let field = generate(DatasetKind::Heat3d, size).full;
    println!(
        "field {} ({} values), chunks={chunks}, threads={}",
        field.name,
        field.len(),
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );
    for model in [
        ReducedModelKind::Direct,
        ReducedModelKind::OneBase,
        ReducedModelKind::Pca,
    ] {
        let pipeline = Pipeline::builder()
            .model(model)
            .threads(threads)
            .chunks(chunks)
            .min_chunk_len(0)
            .build();
        let run = pipeline.compress_detailed(&field);
        let (rec, _) = pipeline
            .reconstruct(&run.bytes)
            .expect("artifact just produced must decode");
        let err = field
            .data
            .iter()
            .zip(&rec)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        println!(
            "{:<10} aggregate ratio {:.2}x, max abs err {err:.3e}",
            model.name(),
            run.report.ratio()
        );
        for c in &run.chunks {
            println!(
                "  chunk z={:<4} dims {:?}: ratio {:.2}x ({} -> {} bytes)",
                c.z_offset,
                c.dims,
                c.report.ratio(),
                c.report.raw_bytes,
                c.report.total_bytes()
            );
        }
        // Determinism spot-checks: thread count must not change the
        // bytes, and one chunk must match the legacy serial stream.
        let single = Pipeline::builder()
            .model(model)
            .threads(1)
            .chunks(chunks)
            .min_chunk_len(0)
            .build()
            .compress(&field);
        let serial = Pipeline::builder().model(model).build().compress(&field);
        let one_chunk = Pipeline::builder()
            .model(model)
            .threads(threads)
            .chunks(1)
            .build()
            .compress(&field);
        println!(
            "  threads={} matches threads=1: {}; chunks=1 matches serial: {}",
            if threads == 0 {
                "auto".to_string()
            } else {
                threads.to_string()
            },
            run.bytes == single.bytes,
            one_chunk.bytes == serial.bytes
        );
    }
    println!();
}

fn main() {
    // The serving-layer subcommands have their own flag grammar; they
    // are dispatched before the experiment parser sees the arguments.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => std::process::exit(lrm_cli::service::run_serve(&argv[1..])),
        Some("client") => std::process::exit(lrm_cli::service::run_client(&argv[1..])),
        _ => {}
    }
    let args = parse_args();
    let run = |name: &str| match name {
        "fig1" => run_fig1(args.size),
        "table2" => run_table2(args.size),
        "fig3" => run_fig3(args.size, args.outputs),
        "fig4" => run_fig4(args.size, args.outputs),
        "fig6" => {
            println!("== Fig. 6: compression ratios, dimension-reduction methods ==");
            dimred_table(args.size, "ratio");
        }
        "fig7" => run_spectrum(
            dimred::fig7(args.size),
            "Fig. 7: PCA proportion of variance",
        ),
        "fig8" => run_spectrum(
            dimred::fig8(args.size),
            "Fig. 8: SVD proportion of singular values",
        ),
        "fig9" => {
            println!("== Fig. 9: size of reduced representations ==");
            dimred_table(args.size, "rep");
        }
        "fig10" => {
            println!("== Fig. 10: RMSE comparison ==");
            dimred_table(args.size, "rmse");
        }
        "fig11" => run_fig11(args.size),
        "fig12" => run_fig12(args.size),
        "table4" => run_table4(args.size, args.procs),
        "select" => run_select(args.size),
        "chunked" => run_chunked(args.size, args.threads, args.chunks),
        "dist" => run_dist(args.size),
        "verify" => run_verify(args.size),
        "temporal" => run_temporal(args.size, args.outputs),
        "bench" => run_bench(args.size),
        other => {
            eprintln!("unknown experiment {other:?}");
            print_help();
            std::process::exit(2);
        }
    };
    if args.experiment == "all" {
        for name in [
            "fig1", "table2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "table4", "select", "chunked", "dist", "temporal", "verify",
        ] {
            run(name);
        }
    } else {
        run(&args.experiment);
    }
}
