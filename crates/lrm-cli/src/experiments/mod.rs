//! Experiment drivers, one module per paper artifact.
//!
//! Every table and figure of the paper's evaluation has a function here
//! that regenerates it; the CLI (`lrm-cli`), the integration tests, and
//! the Criterion benches all call these same drivers.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Fig. 1 | [`characteristics::fig1`] |
//! | Table II | [`characteristics::table2`] |
//! | Fig. 3 | [`projection::fig3`] |
//! | Fig. 4 | [`projection::fig4`] |
//! | Fig. 6 / 9 / 10 | [`dimred::dimred_grid`] |
//! | Fig. 7 | [`dimred::fig7`] |
//! | Fig. 8 | [`dimred::fig8`] |
//! | Fig. 11 | [`rate_distortion::fig11`] |
//! | Fig. 12 | [`overhead::fig12`] |
//! | Table IV | [`end_to_end::table4_modeled`] / [`end_to_end::table4_measured`] |

pub mod characteristics;
pub mod dimred;
pub mod end_to_end;
pub mod overhead;
pub mod projection;
pub mod rate_distortion;
