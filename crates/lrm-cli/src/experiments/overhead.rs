//! Fig. 12: compression / decompression overhead of the preconditioners.
//!
//! The paper reports the average compression and decompression time of
//! PCA, SVD and Wavelet (with ZFP) relative to compressing directly with
//! ZFP: roughly 6.5× / 16.6× / 3.1× on the compression side and 4.9× /
//! 6.9× / 1.2× on decompression — the cost Table IV's staging row then
//! absorbs.

use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};
use std::time::Instant;

/// Average timings for one method.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Method name.
    pub method: &'static str,
    /// Mean compression seconds across datasets.
    pub compress_s: f64,
    /// Mean decompression seconds across datasets.
    pub decompress_s: f64,
    /// Compression time relative to direct ZFP.
    pub compress_rel: f64,
    /// Decompression time relative to direct ZFP.
    pub decompress_rel: f64,
}

/// Measures Fig. 12 across all nine datasets (ZFP paper bounds).
pub fn fig12(size: SizeClass) -> Vec<OverheadRow> {
    let fields: Vec<_> = DatasetKind::ALL
        .into_iter()
        .map(|k| generate(k, size).full)
        .collect();
    let methods = [
        ReducedModelKind::Direct,
        ReducedModelKind::Pca,
        ReducedModelKind::Svd,
        ReducedModelKind::Wavelet,
    ];
    let mut rows: Vec<OverheadRow> = Vec::new();
    for method in methods {
        let cfg = PipelineConfig::zfp(method);
        let mut comp = 0.0;
        let mut decomp = 0.0;
        for f in &fields {
            let t0 = Instant::now();
            let pipeline = Pipeline::from_config(cfg);
            let art = pipeline.compress(f);
            comp += t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let _ = pipeline
                .reconstruct(&art.bytes)
                .expect("artifact just produced must decode");
            decomp += t1.elapsed().as_secs_f64();
        }
        rows.push(OverheadRow {
            method: method.name(),
            compress_s: comp / fields.len() as f64,
            decompress_s: decomp / fields.len() as f64,
            compress_rel: 0.0,
            decompress_rel: 0.0,
        });
    }
    let base_c = rows[0].compress_s.max(1e-12);
    let base_d = rows[0].decompress_s.max(1e-12);
    for r in &mut rows {
        r.compress_rel = r.compress_s / base_c;
        r.decompress_rel = r.decompress_s / base_d;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_rows_cover_methods() {
        let rows = fig12(SizeClass::Tiny);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].method, "original");
        assert!((rows[0].compress_rel - 1.0).abs() < 1e-9);
        for r in &rows {
            assert!(r.compress_s >= 0.0 && r.decompress_s >= 0.0);
        }
    }

    #[test]
    fn preconditioners_cost_more_than_direct() {
        // At tiny scale timing noise is large; assert only the weak form
        // of Fig. 12's finding for the matrix-decomposition methods.
        let rows = fig12(SizeClass::Tiny);
        let svd = rows.iter().find(|r| r.method == "SVD").expect("row");
        assert!(svd.compress_rel > 1.0, "SVD rel {}", svd.compress_rel);
    }
}
