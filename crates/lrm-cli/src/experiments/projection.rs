//! Fig. 3 (projection-method compression ratios on Heat3d and Laplace)
//! and Fig. 4 (improvement vs compressibility).

use lrm_compress::{Codec, Shape};
use lrm_core::projection::upsample;
use lrm_core::{fpc_paper, Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{reduced_snapshots, snapshots, DatasetKind, Field, SizeClass};

/// The four methods of Fig. 3's bar groups.
pub const METHODS: [ReducedModelKind; 4] = [
    ReducedModelKind::Direct,
    ReducedModelKind::OneBase,
    ReducedModelKind::MultiBase(4),
    ReducedModelKind::DuoModel,
];

/// One Fig. 3 bar: average compression ratio of a (dataset, compressor,
/// method) combination over the snapshot series.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Compressor name (SZ / ZFP / FPC).
    pub compressor: &'static str,
    /// Method name (original / one-base / multi-base / DuoModel).
    pub method: &'static str,
    /// Average compression ratio over the snapshots.
    pub ratio: f64,
}

/// Splits a field's length into the blocks multi-base uses by default.
const MULTI_BASE_BLOCKS: usize = 4;

/// FPC-based (lossless) preconditioned sizes: the base is exact, so the
/// stored object is `FPC(base) + FPC(field - base)`.
fn fpc_method_bytes(field: &Field, coarse: &Field, method: ReducedModelKind) -> usize {
    let fpc = fpc_paper();
    let [nx, ny, nz] = field.shape.dims;
    match method {
        ReducedModelKind::Direct => fpc.compress(&field.data, field.shape).len(),
        ReducedModelKind::OneBase => {
            let (base, delta) = if field.shape.ndims() == 2 {
                let mid = ny / 2;
                let row: Vec<f64> = (0..nx).map(|x| field.at(x, mid, 0)).collect();
                let delta: Vec<f64> = (0..field.len())
                    .map(|i| field.data[i] - row[i % nx])
                    .collect();
                ((row, Shape::d1(nx)), delta)
            } else {
                let mid = nz / 2;
                let plane = field.plane_z(mid);
                let mut delta = Vec::with_capacity(field.len());
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            delta.push(field.at(x, y, z) - plane.data[y * nx + x]);
                        }
                    }
                }
                ((plane.data, Shape::d2(nx, ny)), delta)
            };
            fpc.compress(&base.0, base.1).len() + fpc.compress(&delta, field.shape).len()
        }
        ReducedModelKind::MultiBase(_) | ReducedModelKind::DuoModel
            if method == ReducedModelKind::DuoModel =>
        {
            let up = upsample(&coarse.data, coarse.shape, field.shape);
            let delta: Vec<f64> = field.data.iter().zip(&up).map(|(a, b)| a - b).collect();
            fpc.compress(&coarse.data, coarse.shape).len() + fpc.compress(&delta, field.shape).len()
        }
        ReducedModelKind::MultiBase(g) => {
            // Exact per-block bases along the slowest dimension.
            let (bases, base_shape, delta) = if field.shape.ndims() == 2 {
                let g = g.clamp(1, ny);
                let mut rows = Vec::with_capacity(nx * g);
                for b in 0..g {
                    let ym = (b * ny / g + (b + 1) * ny / g) / 2;
                    for x in 0..nx {
                        rows.push(field.at(x, ym, 0));
                    }
                }
                let mut delta = Vec::with_capacity(field.len());
                for y in 0..ny {
                    let b = (y * g / ny).min(g - 1);
                    for x in 0..nx {
                        delta.push(field.at(x, y, 0) - rows[b * nx + x]);
                    }
                }
                (rows, Shape::d2(nx, g), delta)
            } else {
                let g = g.clamp(1, nz);
                let mut planes = Vec::with_capacity(nx * ny * g);
                for b in 0..g {
                    let zm = (b * nz / g + (b + 1) * nz / g) / 2;
                    for y in 0..ny {
                        for x in 0..nx {
                            planes.push(field.at(x, y, zm));
                        }
                    }
                }
                let mut delta = Vec::with_capacity(field.len());
                for z in 0..nz {
                    let b = (z * g / nz).min(g - 1);
                    for y in 0..ny {
                        for x in 0..nx {
                            delta.push(field.at(x, y, z) - planes[(b * ny + y) * nx + x]);
                        }
                    }
                }
                (planes, Shape::d3(nx, ny, g), delta)
            };
            fpc.compress(&bases, base_shape).len() + fpc.compress(&delta, field.shape).len()
        }
        other => panic!("fpc_method_bytes: unsupported method {other:?}"),
    }
}

/// Computes Fig. 3: Heat3d and Laplace, {SZ, ZFP, FPC} × four methods,
/// averaged over `outputs` snapshots.
pub fn fig3(size: SizeClass, outputs: usize) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Heat3d, DatasetKind::Laplace] {
        let fulls = snapshots(kind, outputs, size);
        let coarses = reduced_snapshots(kind, outputs, size);
        // Bounds follow the paper's dual-bound methodology (Section V-B:
        // the delta takes the looser bound). Section IV-B's text lists a
        // single bound, but a point-wise relative bound applied verbatim
        // to near-zero deltas over-spends bits — the very issue Section
        // V-B raises — so the dual bounds are used consistently here and
        // the choice is recorded in EXPERIMENTS.md.
        for (comp_name, make_cfg) in [
            (
                "SZ",
                PipelineConfig::sz as fn(ReducedModelKind) -> PipelineConfig,
            ),
            (
                "ZFP",
                PipelineConfig::zfp as fn(ReducedModelKind) -> PipelineConfig,
            ),
        ] {
            for method in METHODS {
                let mut acc = 0.0;
                for (f, c) in fulls.iter().zip(&coarses) {
                    // The paper feeds outputs to the compressor CLIs as
                    // flat streams; mirror that for data and delta alike.
                    let cfg = make_cfg(method).with_scan_1d(true);
                    let pipeline = Pipeline::from_config(cfg);
                    let art = if method == ReducedModelKind::DuoModel {
                        pipeline.compress_with_aux(f, c)
                    } else {
                        pipeline.compress(f)
                    };
                    acc += art.report.ratio();
                }
                rows.push(Fig3Row {
                    dataset: kind.name(),
                    compressor: comp_name,
                    method: method.name(),
                    ratio: acc / fulls.len() as f64,
                });
            }
        }
        // FPC (lossless) bars.
        for method in METHODS {
            let mut acc = 0.0;
            for (f, c) in fulls.iter().zip(&coarses) {
                let bytes = fpc_method_bytes(f, c, method);
                acc += f.nbytes() as f64 / bytes.max(1) as f64;
            }
            rows.push(Fig3Row {
                dataset: kind.name(),
                compressor: "FPC",
                method: method.name(),
                ratio: acc / fulls.len() as f64,
            });
        }
    }
    let _ = MULTI_BASE_BLOCKS;
    rows
}

/// One Fig. 4 point: compressibility of a snapshot (direct ZFP ratio) vs
/// the improvement one-base brings.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Dataset name.
    pub dataset: &'static str,
    /// Direct ZFP compression ratio of the snapshot (the x axis).
    pub zfp_ratio: f64,
    /// one-base ZFP ratio divided by the direct ratio (the y axis).
    pub improvement: f64,
}

/// Computes Fig. 4 over `outputs` snapshots each of Heat3d and Laplace.
pub fn fig4(size: SizeClass, outputs: usize) -> Vec<Fig4Point> {
    let mut points = Vec::new();
    for kind in [DatasetKind::Heat3d, DatasetKind::Laplace] {
        for f in snapshots(kind, outputs, size) {
            let direct = Pipeline::from_config(
                PipelineConfig::zfp(ReducedModelKind::Direct).with_scan_1d(true),
            )
            .compress(&f);
            let onebase = Pipeline::from_config(
                PipelineConfig::zfp(ReducedModelKind::OneBase).with_scan_1d(true),
            )
            .compress(&f);
            points.push(Fig4Point {
                dataset: kind.name(),
                zfp_ratio: direct.report.ratio(),
                improvement: onebase.report.ratio() / direct.report.ratio(),
            });
        }
    }
    points.sort_by(|a, b| a.zfp_ratio.total_cmp(&b.zfp_ratio));
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_produces_all_combinations() {
        let rows = fig3(SizeClass::Tiny, 2);
        // 2 datasets x 3 compressors x 4 methods.
        assert_eq!(rows.len(), 24);
        for r in &rows {
            assert!(r.ratio > 0.0, "{r:?}");
        }
    }

    #[test]
    fn fig3_preconditioning_improves_lossy_ratios_on_heat3d() {
        let rows = fig3(SizeClass::Tiny, 2);
        let get = |comp: &str, method: &str| {
            rows.iter()
                .find(|r| r.dataset == "Heat3d" && r.compressor == comp && r.method == method)
                .map(|r| r.ratio)
                .expect("row present")
        };
        // The paper's headline: one-base and multi-base beat original for
        // SZ and ZFP.
        for comp in ["SZ", "ZFP"] {
            assert!(
                get(comp, "one-base") > get(comp, "original"),
                "{comp}: {} vs {}",
                get(comp, "one-base"),
                get(comp, "original")
            );
        }
    }

    #[test]
    fn fig4_points_are_sorted_by_compressibility() {
        let pts = fig4(SizeClass::Tiny, 3);
        assert_eq!(pts.len(), 6);
        for w in pts.windows(2) {
            assert!(w[1].zfp_ratio >= w[0].zfp_ratio);
        }
    }
}
