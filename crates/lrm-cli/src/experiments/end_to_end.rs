//! Table IV: end-to-end compression + I/O time, with and without staging.
//!
//! Two complementary reproductions:
//!
//! 1. [`table4_modeled`] feeds the paper's own measured compression times
//!    through the parametric storage model, validating that the model
//!    reproduces every row of Table IV.
//! 2. [`table4_measured`] measures *our* codecs' throughput on a Heat3d
//!    snapshot and runs the same accounting with the I/O model calibrated
//!    to Titan's compute-to-storage speed ratio (the paper's ZFP
//!    throughput vs per-proc effective Lustre bandwidth). Absolute
//!    numbers differ from the paper (different machine on both sides of
//!    the ratio); the *shape* — lightweight codecs beat the baseline,
//!    inline PCA erases the gain, staging wins outright — must hold.
//!
//! A third piece, [`staging_demo`], actually runs the crossbeam staging
//! pipeline and reports how little the application blocked.

use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};
use lrm_io::{table4_rows, EndToEndRow, InterconnectModel, StagingPipeline, StorageModel};
use std::time::Instant;

/// The paper's measured inputs for Table IV (16.7 GB per proc, 64 procs).
pub fn table4_modeled() -> Vec<EndToEndRow> {
    table4_rows(
        &StorageModel::default(),
        &InterconnectModel::default(),
        64,
        16.7e9,
        ["ZFP", "SZ", "PCA(ZFP)", "PCA(SZ)"],
        // Ratios implied by the paper's I/O times (I/O scales with size).
        [52.48 / 20.39, 52.48 / 19.36, 52.48 / 9.23, 52.48 / 9.00],
        [12.09, 9.72, 44.87, 42.95],
    )
}

/// Measured variant: times our pipeline on a Heat3d snapshot and scales.
pub fn table4_measured(size: SizeClass, nprocs: usize) -> Vec<EndToEndRow> {
    let field = generate(DatasetKind::Heat3d, size).full;
    let raw = field.nbytes() as f64;

    let mut ratios = [0.0f64; 4];
    let mut times = [0.0f64; 4];
    let configs = [
        ("ZFP", PipelineConfig::zfp(ReducedModelKind::Direct)),
        ("SZ", PipelineConfig::sz(ReducedModelKind::Direct)),
        ("PCA(ZFP)", PipelineConfig::zfp(ReducedModelKind::Pca)),
        ("PCA(SZ)", PipelineConfig::sz(ReducedModelKind::Pca)),
    ];
    for (i, (_, cfg)) in configs.iter().enumerate() {
        let t0 = Instant::now();
        let art = Pipeline::from_config(*cfg).compress(&field);
        times[i] = t0.elapsed().as_secs_f64();
        ratios[i] = art.report.ratio();
    }

    // Calibrate the I/O model to Titan's compute-to-storage ratio: on the
    // paper's testbed, per-proc ZFP throughput (16.7 GB / 12.09 s) is
    // ~4.3x the per-proc effective aggregate bandwidth share
    // (20.4 GB/s / 64). Preserve that ratio around our measured ZFP
    // throughput.
    let zfp_bw = raw / times[0].max(1e-9);
    let titan_ratio = (16.7e9 / 12.09) / (20.4e9 / 64.0);
    let storage = StorageModel {
        aggregate_bw: zfp_bw * nprocs as f64 / titan_ratio,
        per_proc_bw: zfp_bw, // links never the bottleneck at this scale
        latency: 0.002,
    };
    // Staging interconnect: Titan's ratio of injection bandwidth to
    // aggregate storage bandwidth (81 / 20.4).
    let net = InterconnectModel {
        bw_per_node: storage.aggregate_bw * (81.0 / 20.4),
        latency: 0.001,
        staging_nodes: 1,
    };
    table4_rows(
        &storage,
        &net,
        nprocs,
        raw,
        ["ZFP", "SZ", "PCA(ZFP)", "PCA(SZ)"],
        ratios,
        times,
    )
}

/// Result of the live staging demonstration.
#[derive(Debug, Clone)]
pub struct StagingDemo {
    /// Snapshots staged.
    pub snapshots: usize,
    /// Wall time the application spent blocked in submits (s).
    pub app_blocked_s: f64,
    /// Wall time until the staging node finished everything (s).
    pub staging_total_s: f64,
    /// Total bytes stored after compression on the staging node.
    pub stored_bytes: usize,
    /// Total raw bytes shipped.
    pub raw_bytes: usize,
}

/// Runs the real staging pipeline: the "application" submits `count`
/// Heat3d snapshots while the staging thread compresses them with
/// PCA+SZ asynchronously.
pub fn staging_demo(size: SizeClass, count: usize) -> StagingDemo {
    let field = generate(DatasetKind::Heat3d, size).full;
    let shape = field.shape;
    let cfg = PipelineConfig::sz(ReducedModelKind::Pca);
    let pipeline = StagingPipeline::start(count.max(2), move |name, data| {
        let f = lrm_datasets::Field::new(name.to_string(), data.to_vec(), shape);
        Pipeline::from_config(cfg).compress(&f).bytes
    });
    let t0 = Instant::now();
    for i in 0..count {
        pipeline.submit(format!("snap{i}"), field.data.clone());
    }
    let app_blocked = pipeline.application_blocked_time().as_secs_f64();
    let results = pipeline.finish();
    let total = t0.elapsed().as_secs_f64();
    StagingDemo {
        snapshots: results.len(),
        app_blocked_s: app_blocked,
        staging_total_s: total,
        stored_bytes: results.iter().map(|r| r.stored_bytes).sum(),
        raw_bytes: results.iter().map(|r| r.raw_bytes).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_rows_match_paper_shape() {
        let rows = table4_modeled();
        assert_eq!(rows.len(), 6);
        let totals: Vec<f64> = rows.iter().map(|r| r.total()).collect();
        // ZFP+I/O and SZ+I/O beat the baseline; staging beats everything.
        assert!(totals[1] < totals[0] && totals[2] < totals[0]);
        assert!(totals[5] < totals.iter().take(5).fold(f64::INFINITY, |a, &b| a.min(b)));
        // PCA rows are near the baseline (the paper's "similar to
        // baseline" observation).
        assert!((totals[3] - totals[0]).abs() / totals[0] < 0.3);
    }

    #[test]
    fn measured_rows_keep_the_shape() {
        let rows = table4_measured(SizeClass::Tiny, 64);
        let totals: Vec<f64> = rows.iter().map(|r| r.total()).collect();
        assert!(totals[1] < totals[0], "ZFP must beat baseline: {totals:?}");
        assert!(
            totals[5] < totals[0],
            "staging must beat baseline: {totals:?}"
        );
    }

    #[test]
    fn staging_demo_keeps_application_unblocked() {
        let demo = staging_demo(SizeClass::Tiny, 4);
        assert_eq!(demo.snapshots, 4);
        assert!(demo.stored_bytes > 0 && demo.raw_bytes > 0);
        // The application must block for far less than the staging node's
        // total processing time.
        assert!(demo.app_blocked_s <= demo.staging_total_s, "{demo:?}");
    }
}
