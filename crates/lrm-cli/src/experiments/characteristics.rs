//! Fig. 1 (full vs reduced data characteristics) and Table II (the
//! Heat3d full/projected pair).

use lrm_datasets::heat3d::Heat3d;
use lrm_datasets::{generate, DatasetKind, SizeClass};
use lrm_stats::{ks_distance, DataCharacteristics, EmpiricalCdf};

/// One Fig. 1 panel: characteristics of the full and reduced model of a
/// dataset plus the KS distance between their CDFs.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Dataset name (Table I spelling).
    pub dataset: &'static str,
    /// Byte statistics of the full model.
    pub full: DataCharacteristics,
    /// Byte statistics of the reduced model.
    pub reduced: DataCharacteristics,
    /// Two-sample Kolmogorov–Smirnov distance between the value CDFs.
    pub ks: f64,
    /// Sampled CDF curve of the full model (for plotting).
    pub full_cdf: Vec<(f64, f64)>,
    /// Sampled CDF curve of the reduced model.
    pub reduced_cdf: Vec<(f64, f64)>,
}

/// Computes Fig. 1 for all nine datasets.
pub fn fig1(size: SizeClass) -> Vec<Fig1Row> {
    DatasetKind::ALL
        .into_iter()
        .map(|kind| {
            let pair = generate(kind, size);
            Fig1Row {
                dataset: kind.name(),
                full: DataCharacteristics::of(&pair.full.data),
                reduced: DataCharacteristics::of(&pair.reduced.data),
                ks: ks_distance(&pair.full.data, &pair.reduced.data),
                full_cdf: EmpiricalCdf::new(&pair.full.data).curve(32),
                reduced_cdf: EmpiricalCdf::new(&pair.reduced.data).curve(32),
            }
        })
        .collect()
}

/// Table II: the Heat3d full model next to its projected 2-D reduced
/// model.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Full model problem size (n per dimension, 3-D).
    pub full_n: usize,
    /// Reduced model problem size (n per dimension, 2-D).
    pub reduced_n: usize,
    /// Steps of the full model.
    pub full_steps: usize,
    /// Steps of the reduced model.
    pub reduced_steps: usize,
    /// Stable Δt of the full model.
    pub full_dt: f64,
    /// Stable Δt of the reduced model.
    pub reduced_dt: f64,
    /// Byte statistics of the full output.
    pub full_stats: DataCharacteristics,
    /// Byte statistics of the reduced output.
    pub reduced_stats: DataCharacteristics,
}

/// Computes Table II at the given size class.
pub fn table2(size: SizeClass) -> Table2 {
    // dt_factor mirrors the paper's conservative (min h)³/8κ step; the
    // projected model then needs ~2 orders of magnitude fewer steps at a
    // far larger stable Δt — the structure Table II reports (50 000 steps
    // at 1.712e-8 vs 260 steps at 3.391e-6).
    let cfg = match size {
        SizeClass::Tiny => Heat3d {
            n: 16,
            steps: 60,
            dt_factor: 0.02,
            ..Default::default()
        },
        SizeClass::Small => Heat3d {
            n: 48,
            steps: 600,
            dt_factor: 0.004,
            ..Default::default()
        },
        SizeClass::Paper => Heat3d {
            n: 192,
            steps: 50_000,
            dt_factor: 0.004,
            ..Default::default()
        },
    };
    let reduced_cfg = cfg.projected();
    let full = cfg.solve();
    let reduced = reduced_cfg.solve();
    Table2 {
        full_n: cfg.n,
        reduced_n: reduced_cfg.n,
        full_steps: cfg.steps,
        reduced_steps: reduced_cfg.steps,
        full_dt: cfg.dt(),
        reduced_dt: reduced_cfg.stable_dt(),
        full_stats: DataCharacteristics::of(&full.data),
        reduced_stats: DataCharacteristics::of(&reduced.data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_covers_all_nine_datasets() {
        let rows = fig1(SizeClass::Tiny);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(r.ks >= 0.0 && r.ks <= 1.0, "{}: ks {}", r.dataset, r.ks);
            assert!(!r.full_cdf.is_empty() && !r.reduced_cdf.is_empty());
        }
    }

    #[test]
    fn fig1_pde_datasets_have_similar_models() {
        // The paper's qualitative claim, quantified: KS below 0.6 for the
        // grid datasets even at tiny scale.
        let rows = fig1(SizeClass::Tiny);
        for r in rows
            .iter()
            .filter(|r| ["Laplace", "Astro", "Sedov_pres", "Yf17_temp"].contains(&r.dataset))
        {
            assert!(r.ks < 0.6, "{}: ks {}", r.dataset, r.ks);
        }
        // Heat3d's Tiny reduced grid is 4³ and dominated by its boundary
        // walls; only a loose bound is meaningful at this scale.
        let heat = rows.iter().find(|r| r.dataset == "Heat3d").expect("row");
        assert!(heat.ks < 0.9, "Heat3d ks {}", heat.ks);
    }

    #[test]
    fn table2_mirrors_paper_structure() {
        let t = table2(SizeClass::Tiny);
        // Projected model: same n, far fewer steps, larger dt.
        assert_eq!(t.reduced_n, t.full_n);
        assert!(t.reduced_steps < t.full_steps);
        assert!(t.reduced_dt > t.full_dt);
        // Statistics are comparable (Table II: "nearly the same").
        assert!(t.full_stats.similar_to(&t.reduced_stats, 3.0, 60.0, 0.8));
    }
}
