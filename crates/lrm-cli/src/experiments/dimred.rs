//! Fig. 6 (dimension-reduction compression ratios), Fig. 7 (PCA variance
//! proportions), Fig. 8 (SVD singular-value proportions), Fig. 9
//! (reduced-representation sizes) and Fig. 10 (RMSE comparison).

use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, Field, SizeClass};
use lrm_linalg::{svd, Matrix, Pca};
use lrm_stats::rmse;

/// The dimension-reduction methods of Section V plus the direct baseline.
pub const METHODS: [ReducedModelKind; 4] = [
    ReducedModelKind::Direct,
    ReducedModelKind::Pca,
    ReducedModelKind::Svd,
    ReducedModelKind::Wavelet,
];

/// One (dataset, method, codec) measurement shared by Figs. 6, 9 and 10.
#[derive(Debug, Clone)]
pub struct DimRedRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Method name (original / PCA / SVD / Wavelet).
    pub method: &'static str,
    /// Codec name (SZ / ZFP).
    pub codec: &'static str,
    /// Compression ratio (Fig. 6).
    pub ratio: f64,
    /// Reduced-representation bytes (Fig. 9; 0 for direct).
    pub rep_bytes: usize,
    /// RMSE of the reconstruction against the original (Fig. 10).
    pub rmse: f64,
    /// Retained components k (PCA/SVD only).
    pub k: usize,
}

/// Runs one (field, method, codec) cell.
fn run_cell(
    field: &Field,
    method: ReducedModelKind,
    codec: &'static str,
    cfg: PipelineConfig,
) -> DimRedRow {
    let pipeline = Pipeline::from_config(cfg);
    let art = pipeline.compress(field);
    let (rec, _) = pipeline
        .reconstruct(&art.bytes)
        .expect("artifact just produced must decode");
    DimRedRow {
        dataset: "",
        method: method.name(),
        codec,
        ratio: art.report.ratio(),
        rep_bytes: art.report.rep_bytes,
        rmse: rmse(&field.data, &rec),
        k: art.report.k,
    }
}

/// Computes the full Fig. 6/9/10 grid: nine datasets × four methods × two
/// codecs.
pub fn dimred_grid(size: SizeClass) -> Vec<DimRedRow> {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let field = generate(kind, size).full;
        for method in METHODS {
            for (codec, cfg) in [
                ("SZ", PipelineConfig::sz(method).with_scan_1d(true)),
                ("ZFP", PipelineConfig::zfp(method).with_scan_1d(true)),
            ] {
                let mut row = run_cell(&field, method, codec, cfg);
                row.dataset = kind.name();
                rows.push(row);
            }
        }
    }
    rows
}

/// One Fig. 7/8 series: the leading spectral proportions of a dataset.
#[derive(Debug, Clone)]
pub struct SpectrumRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Leading proportions (descending), at most 5 as the paper plots.
    pub proportions: Vec<f64>,
    /// Components needed to reach 95 % cumulative share.
    pub k95: usize,
}

/// Fig. 7: PCA proportion of variance per dataset.
pub fn fig7(size: SizeClass) -> Vec<SpectrumRow> {
    DatasetKind::ALL
        .into_iter()
        .map(|kind| {
            let field = generate(kind, size).full;
            let (m, n) = field.matrix_dims();
            let pca = Pca::fit(&Matrix::from_vec(m, n, field.data.clone()));
            let p = pca.proportions();
            SpectrumRow {
                dataset: kind.name(),
                proportions: p.iter().copied().take(5).collect(),
                k95: pca.components_for_variance(0.95),
            }
        })
        .collect()
}

/// Fig. 8: SVD proportion of singular values per dataset.
pub fn fig8(size: SizeClass) -> Vec<SpectrumRow> {
    DatasetKind::ALL
        .into_iter()
        .map(|kind| {
            let field = generate(kind, size).full;
            let (m, n) = field.matrix_dims();
            let dec = svd(&Matrix::from_vec(m, n, field.data.clone()));
            let p = dec.proportions();
            SpectrumRow {
                dataset: kind.name(),
                proportions: p.iter().copied().take(5).collect(),
                k95: dec.rank_for_energy(0.95),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_combination() {
        let rows = dimred_grid(SizeClass::Tiny);
        assert_eq!(rows.len(), 9 * 4 * 2);
        for r in &rows {
            assert!(r.ratio > 0.0 && r.rmse.is_finite(), "{r:?}");
        }
    }

    #[test]
    fn direct_rows_have_no_representation() {
        let rows = dimred_grid(SizeClass::Tiny);
        for r in rows.iter().filter(|r| r.method == "original") {
            assert_eq!(r.rep_bytes, 0);
        }
        for r in rows.iter().filter(|r| r.method == "PCA") {
            assert!(r.rep_bytes > 0 && r.k >= 1);
        }
    }

    #[test]
    fn fig7_and_fig8_proportions_are_sorted_shares() {
        for rows in [fig7(SizeClass::Tiny), fig8(SizeClass::Tiny)] {
            assert_eq!(rows.len(), 9);
            for r in &rows {
                for w in r.proportions.windows(2) {
                    assert!(w[0] >= w[1] - 1e-12, "{}: {:?}", r.dataset, r.proportions);
                }
                assert!(r.proportions.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn dominant_first_component_on_correlated_pde_data() {
        // Fig. 7's observation: the PDE datasets are dominated by the
        // first PC, which is why they gain the most in Fig. 6.
        let rows = fig7(SizeClass::Tiny);
        let heat = rows.iter().find(|r| r.dataset == "Heat3d").expect("row");
        assert!(heat.proportions[0] > 0.5, "{:?}", heat.proportions);
    }
}
