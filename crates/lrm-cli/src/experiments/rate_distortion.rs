//! Fig. 11: compression ratio at equal RMSE — the ZFP precision sweep.
//!
//! The paper varies ZFP's precision from 8 to 32 bits and plots ratio vs
//! RMSE for direct compression, PCA, and SVD, asking whether the
//! preconditioners can win *at the same information loss*.

use lrm_core::{LossyCodec, Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};
use lrm_stats::rmse;

/// One point of a Fig. 11 curve.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// Dataset name.
    pub dataset: &'static str,
    /// Method name (original / PCA / SVD).
    pub method: &'static str,
    /// ZFP precision used (bits).
    pub precision: u32,
    /// Measured RMSE of the roundtrip.
    pub rmse: f64,
    /// Measured compression ratio.
    pub ratio: f64,
}

/// The precision grid the sweep visits (the paper's 8..=32 range).
pub const PRECISIONS: [u32; 7] = [8, 12, 16, 20, 24, 28, 32];

/// Runs the sweep for every dataset.
pub fn fig11(size: SizeClass) -> Vec<RatePoint> {
    fig11_datasets(size, &DatasetKind::ALL)
}

/// Runs the sweep for selected datasets.
pub fn fig11_datasets(size: SizeClass, kinds: &[DatasetKind]) -> Vec<RatePoint> {
    let mut out = Vec::new();
    for &kind in kinds {
        let field = generate(kind, size).full;
        for method in [
            ReducedModelKind::Direct,
            ReducedModelKind::Pca,
            ReducedModelKind::Svd,
        ] {
            for &p in &PRECISIONS {
                let cfg = PipelineConfig {
                    model: method,
                    orig: LossyCodec::ZfpPrecision(p),
                    // The delta keeps the paper's 2:1 precision split.
                    delta: LossyCodec::ZfpPrecision((p / 2).max(4)),
                    variance_fraction: 0.95,
                    theta_fraction: 0.05,
                    scan_1d: true,
                };
                let pipeline = Pipeline::from_config(cfg);
                let art = pipeline.compress(&field);
                let (rec, _) = pipeline
                    .reconstruct(&art.bytes)
                    .expect("artifact just produced must decode");
                out.push(RatePoint {
                    dataset: kind.name(),
                    method: method.name(),
                    precision: p,
                    rmse: rmse(&field.data, &rec),
                    ratio: art.report.ratio(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid() {
        let pts = fig11_datasets(SizeClass::Tiny, &[DatasetKind::Laplace]);
        assert_eq!(pts.len(), 3 * PRECISIONS.len());
    }

    #[test]
    fn higher_precision_means_lower_rmse_for_direct() {
        let pts = fig11_datasets(SizeClass::Tiny, &[DatasetKind::Heat3d]);
        let direct: Vec<&RatePoint> = pts.iter().filter(|p| p.method == "original").collect();
        for w in direct.windows(2) {
            assert!(
                w[1].rmse <= w[0].rmse * 1.1 + 1e-12,
                "precision {} rmse {} vs precision {} rmse {}",
                w[1].precision,
                w[1].rmse,
                w[0].precision,
                w[0].rmse
            );
        }
    }

    #[test]
    fn ratio_decreases_with_precision() {
        let pts = fig11_datasets(SizeClass::Tiny, &[DatasetKind::Laplace]);
        let direct: Vec<&RatePoint> = pts.iter().filter(|p| p.method == "original").collect();
        assert!(direct.first().expect("pts").ratio > direct.last().expect("pts").ratio);
    }
}
