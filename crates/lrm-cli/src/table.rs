//! Plain-text table rendering for experiment output.

/// Renders an aligned text table; `headers.len()` must match each row's
/// column count.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "table: ragged row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:<w$}"));
        }
        line.trim_end().to_string()
    };
    let hcells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hcells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with sensible experiment precision.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.500");
        assert_eq!(f(123456.0), "1.235e5");
        assert_eq!(f(0.0000012), "1.200e-6");
    }
}
