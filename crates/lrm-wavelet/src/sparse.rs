//! Sparse (thresholded) coefficient storage.
//!
//! After the Haar transform, entries with `|c| < θ` are zeroed (the paper
//! sets θ to 5 % of the maximum coefficient); the surviving entries form
//! the wavelet *reduced representation*. They are serialized as
//! delta-varint positions plus raw values, which is the storage cost
//! Fig. 9 compares against PCA's and SVD's factors.

/// A sparse view of a row-major matrix: sorted linear positions plus
/// values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    positions: Vec<u64>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a sparse matrix from the entries of `dense` whose magnitude
    /// is at least `threshold`.
    pub fn from_dense(dense: &[f64], rows: usize, cols: usize, threshold: f64) -> Self {
        assert_eq!(dense.len(), rows * cols, "sparse: buffer mismatch");
        let mut positions = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v.abs() >= threshold && v != 0.0 {
                positions.push(i as u64);
                values.push(v);
            }
        }
        Self {
            rows,
            cols,
            positions,
            values,
        }
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Matrix extents.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Fraction of entries stored.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Expands back to a dense row-major buffer (zeros elsewhere).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.rows * self.cols];
        for (&p, &v) in self.positions.iter().zip(&self.values) {
            out[p as usize] = v;
        }
        out
    }

    /// Serializes to bytes: header, delta-varint positions, raw `f64`
    /// values. This is the byte size used for the Fig. 9 comparison.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.nnz() * 10);
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        out.extend_from_slice(&(self.nnz() as u64).to_le_bytes());
        let mut prev = 0u64;
        for &p in &self.positions {
            let delta = p - prev;
            prev = p;
            let mut v = delta;
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(byte);
                    break;
                }
                out.push(byte | 0x80);
            }
        }
        for &v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Inverse of [`SparseMatrix::to_bytes`]. Returns `None` on corrupt
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let rows = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let cols = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let nnz = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
        // Every entry costs at least 9 bytes (1 varint byte + 8 value
        // bytes); reject impossible counts before allocating for them.
        if nnz > bytes.len() {
            return None;
        }
        let mut pos = 16usize;
        let mut positions = Vec::with_capacity(nnz);
        let mut prev = 0u64;
        for _ in 0..nnz {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let &b = bytes.get(pos)?;
                pos += 1;
                if shift >= 64 {
                    return None;
                }
                v |= ((b & 0x7f) as u64) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            prev += v;
            if prev as usize >= rows * cols && !(rows * cols == 0 && prev == 0) {
                return None;
            }
            positions.push(prev);
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let b = bytes.get(pos..pos + 8)?;
            values.push(f64::from_le_bytes(b.try_into().ok()?));
            pos += 8;
        }
        Some(Self {
            rows,
            cols,
            positions,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_thresholds() {
        let dense = vec![0.0, 0.5, -2.0, 0.01, 3.0, -0.3];
        let s = SparseMatrix::from_dense(&dense, 2, 3, 0.4);
        assert_eq!(s.nnz(), 3); // 0.5, -2.0, 3.0
        let back = s.to_dense();
        assert_eq!(back, vec![0.0, 0.5, -2.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn bytes_roundtrip() {
        let dense: Vec<f64> = (0..100)
            .map(|i| if i % 7 == 0 { i as f64 } else { 0.0 })
            .collect();
        let s = SparseMatrix::from_dense(&dense, 10, 10, 0.5);
        let b = s.to_bytes();
        let s2 = SparseMatrix::from_bytes(&b).expect("roundtrip");
        assert_eq!(s, s2);
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let s = SparseMatrix::from_dense(&[], 0, 0, 1.0);
        let s2 = SparseMatrix::from_bytes(&s.to_bytes()).expect("roundtrip");
        assert_eq!(s.nnz(), 0);
        assert_eq!(s, s2);
    }

    #[test]
    fn density_and_shape() {
        let dense = vec![1.0, 0.0, 0.0, 0.0];
        let s = SparseMatrix::from_dense(&dense, 2, 2, 0.5);
        assert_eq!(s.shape(), (2, 2));
        assert!((s.density() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn sparse_storage_is_compact() {
        let mut dense = vec![0.0; 10_000];
        dense[37] = 1.0;
        dense[9_999] = -2.0;
        let s = SparseMatrix::from_dense(&dense, 100, 100, 0.5);
        assert!(s.to_bytes().len() < 48);
    }

    #[test]
    fn corrupt_bytes_return_none() {
        assert!(SparseMatrix::from_bytes(&[1, 2, 3]).is_none());
        let dense = vec![5.0; 4];
        let mut b = SparseMatrix::from_dense(&dense, 2, 2, 0.0).to_bytes();
        b.truncate(b.len() - 4); // chop a value
        assert!(SparseMatrix::from_bytes(&b).is_none());
    }

    #[test]
    fn exact_zero_entries_are_dropped_even_at_zero_threshold() {
        let dense = vec![0.0, 1.0];
        let s = SparseMatrix::from_dense(&dense, 1, 2, 0.0);
        assert_eq!(s.nnz(), 1);
    }
}
