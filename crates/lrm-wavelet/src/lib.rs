//! Haar discrete wavelet transform with threshold sparsification.
//!
//! This is the paper's third dimension-reduction technique (Section
//! V-A3): transform the field with the 2-D Haar wavelet, zero every
//! coefficient below a threshold θ (5 % of the maximum coefficient in the
//! paper's runs), and keep the resulting sparse matrix as the reduced
//! representation. Reconstruction inverts the transform on the sparse
//! coefficients; the delta against the original field is compressed
//! separately by the pipeline in `lrm-core`.

// Index-symmetric loops read more clearly than iterator chains in
// numerical kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod haar;
pub mod haar3d;
pub mod sparse;

pub use haar::{crop, fwd_1d, fwd_2d, inv_1d, inv_2d, next_pow2, pad_pow2};
pub use haar3d::{fwd_3d, inv_3d, WaveletModel3d};
pub use sparse::SparseMatrix;

/// A complete wavelet reduced model of a 2-D field: thresholded transform
/// coefficients plus the original extents (for unpadding).
#[derive(Debug, Clone)]
pub struct WaveletModel {
    /// Sparse transform coefficients over the padded grid.
    pub coeffs: SparseMatrix,
    /// Original (pre-padding) extents.
    pub rows: usize,
    /// Original (pre-padding) columns.
    pub cols: usize,
}

impl WaveletModel {
    /// Transforms `data` (row-major `rows × cols`) and keeps coefficients
    /// with magnitude at least `theta_fraction` of the maximum coefficient
    /// (the paper uses `0.05`).
    pub fn fit(data: &[f64], rows: usize, cols: usize, theta_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta_fraction),
            "wavelet: theta fraction must be in [0, 1]"
        );
        let (mut padded, pr, pc) = pad_pow2(data, rows, cols);
        fwd_2d(&mut padded, pr, pc);
        let maxc = padded.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let theta = theta_fraction * maxc;
        let coeffs = SparseMatrix::from_dense(&padded, pr, pc, theta);
        Self { coeffs, rows, cols }
    }

    /// Reconstructs the (approximate) field from the sparse coefficients.
    pub fn reconstruct(&self) -> Vec<f64> {
        let (pr, pc) = self.coeffs.shape();
        let mut dense = self.coeffs.to_dense();
        inv_2d(&mut dense, pr, pc);
        crop(&dense, pr, pc, self.rows, self.cols)
    }

    /// Serialized size in bytes of the reduced representation (Fig. 9's
    /// metric for the wavelet model).
    pub fn representation_bytes(&self) -> usize {
        self.coeffs.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(rows: usize, cols: usize) -> Vec<f64> {
        (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f64;
                let c = (i % cols) as f64;
                (r * 0.1).sin() * (c * 0.07).cos() * 10.0
            })
            .collect()
    }

    #[test]
    fn zero_threshold_reconstructs_exactly() {
        let data = smooth(16, 16);
        let m = WaveletModel::fit(&data, 16, 16, 0.0);
        let rec = m.reconstruct();
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn five_percent_threshold_is_close_and_sparse() {
        let data = smooth(32, 32);
        let m = WaveletModel::fit(&data, 32, 32, 0.05);
        assert!(m.coeffs.density() < 0.3, "density {}", m.coeffs.density());
        let rec = m.reconstruct();
        let rmse = (data
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / data.len() as f64)
            .sqrt();
        let range = 20.0;
        assert!(rmse < 0.1 * range, "rmse {rmse}");
    }

    #[test]
    fn bigger_threshold_means_smaller_representation() {
        let data = smooth(32, 32);
        let small = WaveletModel::fit(&data, 32, 32, 0.01);
        let big = WaveletModel::fit(&data, 32, 32, 0.2);
        assert!(big.representation_bytes() <= small.representation_bytes());
    }

    #[test]
    fn non_pow2_extents_are_padded_and_cropped() {
        let data = smooth(13, 21);
        let m = WaveletModel::fit(&data, 13, 21, 0.0);
        let rec = m.reconstruct();
        assert_eq!(rec.len(), 13 * 21);
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_field_needs_one_coefficient() {
        let data = vec![4.2; 64 * 64];
        let m = WaveletModel::fit(&data, 64, 64, 0.05);
        assert_eq!(m.coeffs.nnz(), 1);
        let rec = m.reconstruct();
        for v in rec {
            assert!((v - 4.2).abs() < 1e-10);
        }
    }
}
