//! 3-D Haar wavelet transform — an extension beyond the paper.
//!
//! The paper applies the Haar transform to the 2-D matrix view of each
//! field; volumetric datasets (Heat3d, Astro, Sedov, Yf17) lose their
//! z-correlation that way. The separable 3-D transform keeps it,
//! typically yielding sparser thresholded representations on volume
//! data. The ablation lives in `EXPERIMENTS.md`.

use crate::haar::{fwd_1d, inv_1d, next_pow2};
use crate::sparse::SparseMatrix;

/// Full separable 3-D forward transform of a row-major
/// `nx × ny × nz` volume (x fastest), in place. All extents must be
/// powers of two.
pub fn fwd_3d(data: &mut [f64], nx: usize, ny: usize, nz: usize) {
    assert_eq!(data.len(), nx * ny * nz, "haar3d: buffer mismatch");
    assert!(
        nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two(),
        "haar3d: extents must be powers of two"
    );
    // Along x: rows are contiguous.
    for r in 0..ny * nz {
        fwd_1d(&mut data[r * nx..(r + 1) * nx]);
    }
    // Along y.
    let mut line = vec![0.0; ny];
    for z in 0..nz {
        for x in 0..nx {
            for y in 0..ny {
                line[y] = data[(z * ny + y) * nx + x];
            }
            fwd_1d(&mut line);
            for y in 0..ny {
                data[(z * ny + y) * nx + x] = line[y];
            }
        }
    }
    // Along z.
    let mut line = vec![0.0; nz];
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                line[z] = data[(z * ny + y) * nx + x];
            }
            fwd_1d(&mut line);
            for z in 0..nz {
                data[(z * ny + y) * nx + x] = line[z];
            }
        }
    }
}

/// Inverse of [`fwd_3d`].
pub fn inv_3d(data: &mut [f64], nx: usize, ny: usize, nz: usize) {
    assert_eq!(data.len(), nx * ny * nz, "haar3d: buffer mismatch");
    let mut line = vec![0.0; nz];
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                line[z] = data[(z * ny + y) * nx + x];
            }
            inv_1d(&mut line);
            for z in 0..nz {
                data[(z * ny + y) * nx + x] = line[z];
            }
        }
    }
    let mut line = vec![0.0; ny];
    for z in 0..nz {
        for x in 0..nx {
            for y in 0..ny {
                line[y] = data[(z * ny + y) * nx + x];
            }
            inv_1d(&mut line);
            for y in 0..ny {
                data[(z * ny + y) * nx + x] = line[y];
            }
        }
    }
    for r in 0..ny * nz {
        inv_1d(&mut data[r * nx..(r + 1) * nx]);
    }
}

/// 3-D wavelet reduced model: thresholded coefficients over the padded
/// volume plus the original extents.
#[derive(Debug, Clone)]
pub struct WaveletModel3d {
    /// Sparse coefficients, stored as a matrix of `pz × (py·px)` for
    /// reuse of the 2-D sparse container.
    pub coeffs: SparseMatrix,
    /// Original extents (pre-padding).
    pub dims: [usize; 3],
    /// Padded extents.
    pub padded: [usize; 3],
}

impl WaveletModel3d {
    /// Transforms a volume and keeps coefficients at least
    /// `theta_fraction` of the maximum (paper's rule, here in 3-D).
    pub fn fit(data: &[f64], nx: usize, ny: usize, nz: usize, theta_fraction: f64) -> Self {
        assert_eq!(data.len(), nx * ny * nz, "haar3d: buffer mismatch");
        assert!(
            (0.0..=1.0).contains(&theta_fraction),
            "haar3d: theta fraction must be in [0, 1]"
        );
        let (px, py, pz) = (next_pow2(nx), next_pow2(ny), next_pow2(nz));
        // Pad by edge replication.
        let mut vol = vec![0.0; px * py * pz];
        for z in 0..pz {
            let sz = z.min(nz - 1);
            for y in 0..py {
                let sy = y.min(ny - 1);
                for x in 0..px {
                    let sx = x.min(nx - 1);
                    vol[(z * py + y) * px + x] = data[(sz * ny + sy) * nx + sx];
                }
            }
        }
        fwd_3d(&mut vol, px, py, pz);
        let maxc = vol.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let coeffs = SparseMatrix::from_dense(&vol, pz, py * px, theta_fraction * maxc);
        Self {
            coeffs,
            dims: [nx, ny, nz],
            padded: [px, py, pz],
        }
    }

    /// Reconstructs the approximate volume.
    pub fn reconstruct(&self) -> Vec<f64> {
        let [nx, ny, nz] = self.dims;
        let [px, py, pz] = self.padded;
        let mut vol = self.coeffs.to_dense();
        inv_3d(&mut vol, px, py, pz);
        let mut out = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                let row = (z * py + y) * px;
                out.extend_from_slice(&vol[row..row + nx]);
            }
        }
        out
    }

    /// Serialized representation size in bytes.
    pub fn representation_bytes(&self) -> usize {
        self.coeffs.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volume(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
        (0..nx * ny * nz)
            .map(|i| {
                let x = (i % nx) as f64;
                let y = ((i / nx) % ny) as f64;
                let z = (i / (nx * ny)) as f64;
                (x * 0.2).sin() * (y * 0.15).cos() + 0.3 * (z * 0.1).sin()
            })
            .collect()
    }

    #[test]
    fn fwd_inv_3d_roundtrip() {
        let orig = volume(8, 16, 4);
        let mut v = orig.clone();
        fwd_3d(&mut v, 8, 16, 4);
        inv_3d(&mut v, 8, 16, 4);
        for (a, b) in orig.iter().zip(&v) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn transform_is_an_isometry() {
        let orig = volume(8, 8, 8);
        let e0: f64 = orig.iter().map(|v| v * v).sum();
        let mut v = orig;
        fwd_3d(&mut v, 8, 8, 8);
        let e1: f64 = v.iter().map(|v| v * v).sum();
        assert!((e0 - e1).abs() < 1e-9 * e0);
    }

    #[test]
    fn model_zero_threshold_is_exact() {
        let data = volume(5, 6, 7); // forces padding on every axis
        let m = WaveletModel3d::fit(&data, 5, 6, 7, 0.0);
        let rec = m.reconstruct();
        assert_eq!(rec.len(), data.len());
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn model_thresholding_sparsifies_volume_data() {
        let data = volume(16, 16, 16);
        let m = WaveletModel3d::fit(&data, 16, 16, 16, 0.05);
        assert!(m.coeffs.density() < 0.2, "density {}", m.coeffs.density());
        // Still a reasonable approximation.
        let rec = m.reconstruct();
        let rmse = (data
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / data.len() as f64)
            .sqrt();
        assert!(rmse < 0.3, "rmse {rmse}");
    }

    #[test]
    fn volumetric_beats_matrix_view_on_z_correlated_data() {
        // The point of the extension: a z-correlated volume needs fewer
        // 3-D coefficients than 2-D-on-the-matrix-view coefficients.
        let (nx, ny, nz) = (16, 16, 16);
        let data: Vec<f64> = (0..nx * ny * nz)
            .map(|i| {
                let x = (i % nx) as f64;
                let y = ((i / nx) % ny) as f64;
                // Constant along z.
                (x * 0.4).sin() * (y * 0.3).cos() * 10.0
            })
            .collect();
        let m3 = WaveletModel3d::fit(&data, nx, ny, nz, 0.02);
        let m2 = crate::WaveletModel::fit(&data, ny * nz, nx, 0.02);
        assert!(
            m3.coeffs.nnz() < m2.coeffs.nnz(),
            "3-D {} vs 2-D {}",
            m3.coeffs.nnz(),
            m2.coeffs.nnz()
        );
    }
}
