//! Orthonormal Haar wavelet transform, 1-D and 2-D, multi-level.
//!
//! Implements the three-step scheme of Section V-A3: pair entries in each
//! row, store (normalized) differences, pass sums to the next scale, and
//! recurse until a single sum remains; repeat over columns; then threshold
//! the result (see [`crate::WaveletModel`]). The orthonormal normalization
//! (`1/√2`) keeps coefficient magnitudes comparable across levels so a
//! single threshold is meaningful.

/// One forward Haar level over `data[..n]`: writes n/2 smooth (sum)
/// coefficients followed by n/2 detail (difference) coefficients.
fn fwd_step(data: &mut [f64], n: usize, scratch: &mut [f64]) {
    let half = n / 2;
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    for i in 0..half {
        let a = data[2 * i];
        let b = data[2 * i + 1];
        scratch[i] = (a + b) * inv_sqrt2;
        scratch[half + i] = (a - b) * inv_sqrt2;
    }
    data[..n].copy_from_slice(&scratch[..n]);
}

/// One inverse Haar level over `data[..n]`.
fn inv_step(data: &mut [f64], n: usize, scratch: &mut [f64]) {
    let half = n / 2;
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    for i in 0..half {
        let s = data[i];
        let d = data[half + i];
        scratch[2 * i] = (s + d) * inv_sqrt2;
        scratch[2 * i + 1] = (s - d) * inv_sqrt2;
    }
    data[..n].copy_from_slice(&scratch[..n]);
}

/// Full multi-level forward 1-D Haar transform in place.
///
/// # Panics
/// Panics unless `data.len()` is a power of two (use [`pad_pow2`] first).
pub fn fwd_1d(data: &mut [f64]) {
    let len = data.len();
    assert!(len.is_power_of_two(), "haar: length must be a power of two");
    let mut scratch = vec![0.0; len];
    let mut n = len;
    while n >= 2 {
        fwd_step(data, n, &mut scratch);
        n /= 2;
    }
}

/// Full multi-level inverse 1-D Haar transform in place.
pub fn inv_1d(data: &mut [f64]) {
    let len = data.len();
    assert!(len.is_power_of_two(), "haar: length must be a power of two");
    let mut scratch = vec![0.0; len];
    let mut n = 2;
    while n <= len {
        inv_step(data, n, &mut scratch);
        n *= 2;
    }
}

/// Full 2-D forward transform of a row-major `rows × cols` matrix:
/// multi-level over every row, then multi-level over every column
/// (the paper's Step 1 then Step 2).
pub fn fwd_2d(data: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "haar: buffer mismatch");
    assert!(
        rows.is_power_of_two() && cols.is_power_of_two(),
        "haar: extents must be powers of two"
    );
    for r in 0..rows {
        fwd_1d(&mut data[r * cols..(r + 1) * cols]);
    }
    let mut col = vec![0.0; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        fwd_1d(&mut col);
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
}

/// Inverse of [`fwd_2d`].
pub fn inv_2d(data: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "haar: buffer mismatch");
    let mut col = vec![0.0; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        inv_1d(&mut col);
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
    for r in 0..rows {
        inv_1d(&mut data[r * cols..(r + 1) * cols]);
    }
}

/// Next power of two >= n (min 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Pads a row-major matrix to power-of-two extents by replicating edge
/// samples (replication keeps padding smooth, so it costs few nonzero
/// coefficients after thresholding). Returns the padded buffer and its
/// extents.
pub fn pad_pow2(data: &[f64], rows: usize, cols: usize) -> (Vec<f64>, usize, usize) {
    assert_eq!(data.len(), rows * cols, "pad: buffer mismatch");
    let pr = next_pow2(rows);
    let pc = next_pow2(cols);
    let mut out = vec![0.0; pr * pc];
    for r in 0..pr {
        let sr = r.min(rows.saturating_sub(1));
        for c in 0..pc {
            let sc = c.min(cols.saturating_sub(1));
            out[r * pc + c] = if rows == 0 || cols == 0 {
                0.0
            } else {
                data[sr * cols + sc]
            };
        }
    }
    (out, pr, pc)
}

/// Crops a padded matrix back to `rows × cols`.
pub fn crop(data: &[f64], prows: usize, pcols: usize, rows: usize, cols: usize) -> Vec<f64> {
    assert!(rows <= prows && cols <= pcols, "crop: target too large");
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        out.extend_from_slice(&data[r * pcols..r * pcols + cols]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fwd_inv_1d_roundtrip() {
        let orig: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() * 7.0).collect();
        let mut v = orig.clone();
        fwd_1d(&mut v);
        inv_1d(&mut v);
        for (a, b) in orig.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fwd_inv_2d_roundtrip() {
        let (rows, cols) = (16, 32);
        let orig: Vec<f64> = (0..rows * cols).map(|i| ((i * 37) % 101) as f64).collect();
        let mut v = orig.clone();
        fwd_2d(&mut v, rows, cols);
        inv_2d(&mut v, rows, cols);
        for (a, b) in orig.iter().zip(&v) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let mut v = vec![3.0; 16];
        fwd_1d(&mut v);
        // All energy in the first (DC) coefficient: 3 * sqrt(16) = 12.
        assert!((v[0] - 12.0).abs() < 1e-12);
        for &d in &v[1..] {
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn transform_preserves_energy() {
        // Orthonormal Haar is an isometry.
        let orig: Vec<f64> = (0..128).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        let e0: f64 = orig.iter().map(|v| v * v).sum();
        let mut v = orig;
        fwd_1d(&mut v);
        let e1: f64 = v.iter().map(|v| v * v).sum();
        assert!((e0 - e1).abs() < 1e-9 * e0);
    }

    #[test]
    fn smooth_signal_has_sparse_details() {
        let mut v: Vec<f64> = (0..256).map(|i| (i as f64 * 0.01).sin()).collect();
        fwd_1d(&mut v);
        let max = v.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let big = v.iter().filter(|&&c| c.abs() > 0.05 * max).count();
        assert!(
            big < 32,
            "smooth signal should need few coefficients: {big}"
        );
    }

    #[test]
    fn pad_and_crop_roundtrip() {
        let data: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let (p, pr, pc) = pad_pow2(&data, 3, 5);
        assert_eq!((pr, pc), (4, 8));
        let back = crop(&p, pr, pc, 3, 5);
        assert_eq!(back, data);
    }

    #[test]
    fn pad_replicates_edges() {
        let data = vec![1.0, 2.0, 3.0]; // 1x3
        let (p, pr, pc) = pad_pow2(&data, 1, 3);
        assert_eq!((pr, pc), (1, 4));
        assert_eq!(p, vec![1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fwd_rejects_non_pow2() {
        fwd_1d(&mut [0.0; 12]);
    }

    #[test]
    fn prop_1d_roundtrip_randomized() {
        // Property: fwd_1d / inv_1d are inverses for any signal length
        // 2^4..2^8 and any amplitude profile.
        for seed in 0..64u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let k = 1 + rng.range_usize(4);
            let amps = rng.vec_f64(-1e6, 1e6, k);
            let n = 1usize << (k + 3);
            let orig: Vec<f64> = (0..n)
                .map(|i| amps[i % amps.len()] * ((i as f64) * 0.37).sin())
                .collect();
            let mut v = orig.clone();
            fwd_1d(&mut v);
            inv_1d(&mut v);
            for (a, b) in orig.iter().zip(&v) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
