//! Survey the dimension-reduction preconditioners (PCA / SVD / Wavelet)
//! across all nine Table I datasets — a compact Fig. 6 + Fig. 9 + Fig. 10
//! in one run.
//!
//! ```sh
//! cargo run --release --example dimred_survey
//! ```

use lrm::core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm::datasets::{generate, DatasetKind, SizeClass};
use lrm::stats::rmse;

fn main() {
    println!(
        "{:<14} {:<9} {:>8} {:>12} {:>12} {:>4}",
        "dataset", "method", "ratio", "rep bytes", "RMSE", "k"
    );
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Small).full;
        for model in [
            ReducedModelKind::Direct,
            ReducedModelKind::Pca,
            ReducedModelKind::Svd,
            ReducedModelKind::Wavelet,
        ] {
            let pipeline = Pipeline::from_config(PipelineConfig::sz(model).with_scan_1d(true));
            let art = pipeline.compress(&field);
            let (rec, _) = pipeline
                .reconstruct(&art.bytes)
                .expect("artifact just produced must decode");
            println!(
                "{:<14} {:<9} {:>8.2} {:>12} {:>12.3e} {:>4}",
                kind.name(),
                model.name(),
                art.report.ratio(),
                art.report.rep_bytes,
                rmse(&field.data, &rec),
                art.report.k
            );
        }
        println!();
    }
    println!("(paper: PCA/SVD help the column-correlated PDE fields most;");
    println!(" Wavelet representations stay large; Fish prefers direct compression.)");
}
