//! The paper's future-work extension, working today: pick the best
//! reduced model per dataset automatically.
//!
//! ```sh
//! cargo run --release --example model_selection
//! ```

use lrm::core::{default_candidates, select_best_model, PipelineConfig, ReducedModelKind};
use lrm::datasets::{generate, DatasetKind, SizeClass};

fn main() {
    let base = PipelineConfig::sz(ReducedModelKind::Direct).with_scan_1d(true);
    println!(
        "{:<14} {:<12} {:>10} {:>12} {:>7}",
        "dataset", "winner", "best ratio", "direct ratio", "gain"
    );
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Small).full;
        let (winner, results) = select_best_model(&field, &default_candidates(), &base);
        let best = results[0].report.ratio();
        let direct = results
            .iter()
            .find(|r| r.model == ReducedModelKind::Direct)
            .map(|r| r.report.ratio())
            .unwrap_or(f64::NAN);
        println!(
            "{:<14} {:<12} {:>10.2} {:>12.2} {:>6.2}x",
            kind.name(),
            winner.name(),
            best,
            direct,
            best / direct
        );
    }
    println!("\nNo single reduced model wins everywhere — the motivation the");
    println!("paper gives for model selection as future work. Where nothing");
    println!("beats direct compression (gain 1.00x), the selector leaves the");
    println!("data alone.");
}
