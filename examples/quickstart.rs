//! Quickstart: precondition one scientific field and compress it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lrm::core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm::datasets::{generate, DatasetKind, SizeClass};
use lrm::stats::{max_abs_error, rmse};

fn main() {
    // 1. Get a scientific field. Heat3d is the paper's case study; any of
    //    the nine Table I datasets works the same way.
    let pair = generate(DatasetKind::Heat3d, SizeClass::Small);
    let field = pair.full;
    println!(
        "field: {} ({} values, {} bytes raw)",
        field.name,
        field.len(),
        field.nbytes()
    );

    // 2. Compress directly (the baseline everyone uses today)...
    // scan_1d mirrors how outputs are normally fed to compressor CLIs
    // (flat byte streams, no grid metadata) — the setting the paper
    // evaluates.
    let cfg = PipelineConfig::sz(ReducedModelKind::Direct).with_scan_1d(true);
    let direct = Pipeline::builder()
        .model(ReducedModelKind::Direct)
        .codec(cfg.orig)
        .delta_codec(cfg.delta)
        .scan_1d(true)
        .build()
        .compress(&field);
    println!(
        "direct SZ:        {:8} bytes  (ratio {:>6.2}x)",
        direct.report.total_bytes(),
        direct.report.ratio()
    );

    // 3. ...then precondition with the one-base reduced model first. The
    //    handle is reusable, and `.threads(n).chunks(n)` would turn on the
    //    chunk-parallel engine for large 3-D fields.
    let pipeline = Pipeline::builder()
        .model(ReducedModelKind::OneBase)
        .codec(cfg.orig)
        .delta_codec(cfg.delta)
        .scan_1d(true)
        .build();
    let onebase = pipeline.compress(&field);
    println!(
        "one-base + SZ:    {:8} bytes  (ratio {:>6.2}x; rep {} B, delta {} B)",
        onebase.report.total_bytes(),
        onebase.report.ratio(),
        onebase.report.rep_bytes,
        onebase.report.delta_bytes
    );

    // 4. The artifact is self-describing: reconstruction needs only the
    //    bytes.
    let (restored, shape) = pipeline
        .reconstruct(&onebase.bytes)
        .expect("artifact just produced must decode");
    assert_eq!(shape, field.shape);
    println!(
        "reconstruction:   rmse {:.3e}, max abs err {:.3e}",
        rmse(&field.data, &restored),
        max_abs_error(&field.data, &restored)
    );

    // 5. Not sure which reduced model fits your data? Ask the selector
    //    (the paper's future-work extension).
    let (winner, results) = lrm::core::select_best_model(
        &field,
        &lrm::core::default_candidates(),
        &PipelineConfig::sz(ReducedModelKind::Direct).with_scan_1d(true),
    );
    println!("\nbest model for this field: {}", winner.name());
    for r in results.iter().take(3) {
        println!("  {:<12} ratio {:>6.2}x", r.model.name(), r.report.ratio());
    }
}
