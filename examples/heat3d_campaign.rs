//! A simulated HPC campaign: run Heat3d, precondition each snapshot with
//! the one-base reduced model *on the rank decomposition* (Algorithm 1),
//! and drain everything through an asynchronous staging pipeline — the
//! full Table IV architecture in one binary.
//!
//! ```sh
//! cargo run --release --example heat3d_campaign
//! ```

use lrm::core::parallel_one_base::distributed_one_base;
use lrm::core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm::datasets::heat3d::Heat3d;
use lrm::io::StagingPipeline;
use std::time::Instant;

fn main() {
    let cfg = Heat3d {
        n: 32,
        steps: 2000,
        dt_factor: 0.01,
        ..Default::default()
    };
    println!(
        "running Heat3d {}³ for {} steps (dt = {:.3e})",
        cfg.n,
        cfg.steps,
        cfg.dt()
    );
    let snapshots = cfg.snapshots(6);

    // Distributed delta on a 2x2x2 rank grid, exactly as Algorithm 1
    // would run on MPI: the mid-plane owners broadcast, everyone
    // subtracts, deltas are gathered.
    let first = &snapshots[0];
    let dist = distributed_one_base(first, [2, 2, 2]);
    let broadcast_bytes = dist.plane.len() * 8 * 7; // root -> 7 peers
    println!(
        "distributed one-base on 8 ranks: mid-plane broadcast cost {} bytes ({}x smaller than the field)",
        broadcast_bytes,
        first.nbytes() / broadcast_bytes.max(1)
    );

    // Stage every snapshot: the application thread only blocks for the
    // channel hand-off; compression happens on the staging thread.
    let shape = first.shape;
    let pipe_cfg = PipelineConfig::sz(ReducedModelKind::OneBase);
    let staging = StagingPipeline::start(8, move |name, data| {
        let f = lrm::datasets::Field::new(name.to_string(), data.to_vec(), shape);
        Pipeline::from_config(pipe_cfg).compress(&f).bytes
    });

    let t0 = Instant::now();
    for snap in &snapshots {
        staging.submit(snap.name.clone(), snap.data.clone());
    }
    let blocked = staging.application_blocked_time();
    let results = staging.finish();
    let wall = t0.elapsed();

    let raw: usize = results.iter().map(|r| r.raw_bytes).sum();
    let stored: usize = results.iter().map(|r| r.stored_bytes).sum();
    println!(
        "staged {} snapshots: {} -> {} bytes (ratio {:.2}x)",
        results.len(),
        raw,
        stored,
        raw as f64 / stored.max(1) as f64
    );
    println!(
        "application blocked {:.2?} of {:.2?} total — staging absorbed the compression cost",
        blocked, wall
    );
}
