//! Bring your own data: read a raw f64 dump, pick the best reduced model,
//! compress, persist to disk, read back, reconstruct.
//!
//! ```sh
//! cargo run --release --example bring_your_own_data [path nx ny nz]
//! ```
//!
//! Without arguments the example writes one of the built-in datasets to a
//! temporary raw file first, so it is runnable out of the box.

use lrm::core::{
    default_candidates, select_best_model, Pipeline, PipelineConfig, ReducedModelKind,
};
use lrm::datasets::{read_raw, write_raw, Shape};
use lrm::io::DiskStore;
use lrm::stats::nrmse;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, shape) = if args.len() == 4 {
        let dims: Vec<usize> = args[1..4]
            .iter()
            .map(|s| s.parse().expect("dims must be integers"))
            .collect();
        (
            std::path::PathBuf::from(&args[0]),
            Shape::d3(dims[0], dims[1], dims[2]),
        )
    } else {
        // Self-contained demo: dump a generated field as a raw file.
        let field = lrm::datasets::generate(
            lrm::datasets::DatasetKind::SedovPres,
            lrm::datasets::SizeClass::Small,
        )
        .full;
        let p = std::env::temp_dir().join("lrm_byod_demo.raw");
        write_raw(&field, &p).expect("write demo raw file");
        println!("(no args given — wrote demo data to {})", p.display());
        (p, field.shape)
    };

    // 1. Read the raw dump (shape comes from the caller, as with any HPC
    //    binary file).
    let field = read_raw(&path, shape, path.display().to_string()).expect("read raw field");
    println!("loaded {} values ({} bytes)", field.len(), field.nbytes());

    // 2. Let the selector choose the reduced model.
    let base = PipelineConfig::sz(ReducedModelKind::Direct).with_scan_1d(true);
    let (winner, results) = select_best_model(&field, &default_candidates(), &base);
    println!(
        "selected model: {} (candidates tried: {})",
        winner.name(),
        results.len()
    );

    // 3. Compress and persist.
    let cfg = PipelineConfig {
        model: winner,
        ..base
    };
    let pipeline = Pipeline::from_config(cfg);
    let art = pipeline.compress(&field);
    println!(
        "compressed: {} -> {} bytes (ratio {:.2}x)",
        field.nbytes(),
        art.report.total_bytes(),
        art.report.ratio()
    );
    let store = DiskStore::open(std::env::temp_dir().join("lrm_byod_store")).expect("store");
    let receipt = store.write("snapshot", &art.bytes).expect("persist");
    println!("persisted {} bytes in {:?}", receipt.bytes, receipt.elapsed);

    // 4. Read back and reconstruct — the artifact is self-describing.
    let bytes = store.read("snapshot").expect("read back");
    let (restored, rshape) = pipeline
        .reconstruct(&bytes)
        .expect("artifact just produced must decode");
    assert_eq!(rshape, field.shape);
    println!(
        "reconstructed with nrmse {:.3e}",
        nrmse(&field.data, &restored)
    );
}
